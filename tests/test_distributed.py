"""Distributed-execution tests: the wire protocol, the four executors,
fault injection (dead/hung/corrupting workers, flaky cache backends),
the shared cache backend under concurrent writers, and cross-process
key stability.

Every scenario here must end in one of exactly two states: the sweep
completes with results bit-identical to in-process execution, or a
*simulation* error propagates. No infrastructure fault — however
rude — may crash the engine or smuggle in a wrong payload.
"""

import io
import json
import pickle
import subprocess
import sys
import threading
from dataclasses import replace
from itertools import permutations
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from fault_injection import (  # noqa: E402
    FlakyBackend,
    corrupt_always,
    corrupt_once,
    flaky_worker_command,
)
from repro.config import scaled_config  # noqa: E402
from repro.runner import (  # noqa: E402
    CACHE_SCHEMA_VERSION,
    DirectoryBackend,
    ExperimentRunner,
    JobSpec,
    LoopbackExecutor,
    MISS,
    RemoteJobError,
    ResultCache,
    RunnerStats,
    SharedDirectoryBackend,
    WireError,
)
from repro.runner.executors import _worker_env  # noqa: E402
from repro.runner.wire import (  # noqa: E402
    PROTOCOL_VERSION,
    decode_hello,
    decode_job,
    decode_result,
    encode_error,
    encode_hello,
    encode_job,
    encode_result,
)
from repro.runner.worker import serve  # noqa: E402

CFG = scaled_config(num_sms=1, window_cycles=600)
TINY = 0.05


def make_spec(app="S2", arch="baseline", config=CFG, scale=TINY, **overrides):
    return JobSpec.build(
        app=app, arch=arch, config=config, scale=scale, overrides=overrides
    )


SPECS = [make_spec("S2"), make_spec("LI"), make_spec("KM")]


@pytest.fixture(scope="module")
def inline_results():
    """Reference results, computed once, in-process, uncached."""
    runner = ExperimentRunner(workers=1, use_cache=False, executor="inline")
    return runner.run_many(SPECS)


def assert_matches_inline(results, inline_results):
    assert len(results) == len(inline_results)
    for got, want in zip(results, inline_results):
        assert got.instructions == want.instructions
        assert got.cycles == want.cycles
        assert got.ipc == want.ipc
        assert got.request_breakdown == want.request_breakdown


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
class TestWireProtocol:
    def test_job_round_trip(self):
        spec = make_spec(track_loads=True)
        key, clone = decode_job(encode_job(spec.key, spec))
        assert key == spec.key
        assert clone == spec
        assert clone.key == spec.key

    def test_result_round_trip(self):
        payload = {"stats": [1, 2, 3], "nested": {"ipc": 0.5}}
        result = decode_result(encode_result("k" * 8, payload, 1.25))
        assert result.ok
        assert result.key == "k" * 8
        assert result.payload == payload
        assert result.seconds == 1.25

    def test_error_round_trip(self):
        result = decode_result(encode_error("deadbeef", "Traceback: boom"))
        assert not result.ok
        assert result.error == "Traceback: boom"
        assert result.payload is None

    def test_hello_round_trip(self):
        assert decode_hello(encode_hello()) > 0

    def test_hello_carries_proto_version(self):
        msg = json.loads(encode_hello())
        assert msg["proto"] == PROTOCOL_VERSION

    def test_hello_proto_mismatch_is_protocol_mismatch(self):
        from repro.runner.wire import ProtocolMismatch

        msg = json.loads(encode_hello())
        msg["proto"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolMismatch, match="upgrade the older peer"):
            decode_hello(json.dumps(msg))

    def test_hello_without_proto_falls_back_to_envelope(self):
        # A pre-``proto`` peer of the *same* envelope revision is still
        # compatible (it predates the field, not the protocol); a
        # different envelope revision is a mismatch either way.
        from repro.runner.wire import ProtocolMismatch

        msg = json.loads(encode_hello())
        del msg["proto"]
        assert decode_hello(json.dumps(msg)) > 0
        msg["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolMismatch):
            decode_hello(json.dumps(msg))

    def test_not_json_is_wire_error(self):
        for line in ("%%% garbage %%%", "", "42", '"a string"', "[1,2]"):
            with pytest.raises(WireError):
                decode_result(line)

    def test_version_mismatch_is_wire_error(self):
        line = encode_job("abc", make_spec())
        msg = json.loads(line)
        msg["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_job(json.dumps(msg))

    def test_wrong_message_type_is_wire_error(self):
        with pytest.raises(WireError, match="expected"):
            decode_result(encode_job("abc", make_spec()))

    def test_truncated_line_is_wire_error(self):
        line = encode_job("abc", make_spec())
        with pytest.raises(WireError):
            decode_job(line[: len(line) // 2])

    def test_bit_flip_caught_by_digest(self):
        """A corrupted payload that still parses as JSON must be caught
        by the SHA-256 digest, never silently unpickled."""
        line = encode_job("abc", make_spec())
        msg = json.loads(line)
        b64 = msg["spec"]["b64"]
        msg["spec"]["b64"] = ("A" if b64[0] != "A" else "B") + b64[1:]
        with pytest.raises(WireError, match="digest|base64"):
            decode_job(json.dumps(msg))

    def test_malformed_payload_box_is_wire_error(self):
        line = encode_result("abc", {"x": 1}, 0.1)
        msg = json.loads(line)
        msg["payload"] = {"b64": msg["payload"]["b64"]}  # digest dropped
        with pytest.raises(WireError):
            decode_result(json.dumps(msg))


# ---------------------------------------------------------------------------
# Worker loop (driven directly, no subprocess)
# ---------------------------------------------------------------------------
class TestWorkerServe:
    def run_worker(self, lines, cache=None):
        stdout = io.StringIO()
        code = serve(io.StringIO("".join(lines)), stdout, cache=cache)
        assert code == 0
        out = stdout.getvalue().splitlines()
        assert decode_hello(out[0]) > 0  # first line is always the greeting
        return out[1:]

    def test_serves_one_job(self):
        spec = make_spec()
        replies = self.run_worker([encode_job(spec.key, spec) + "\n"])
        assert len(replies) == 1
        result = decode_result(replies[0])
        assert result.ok
        assert result.key == spec.key
        assert result.payload.instructions > 0
        assert result.seconds > 0.0

    def test_bad_line_answered_and_loop_continues(self):
        spec = make_spec()
        replies = self.run_worker(
            ["%%% not protocol %%%\n", encode_job(spec.key, spec) + "\n"]
        )
        assert len(replies) == 2
        bad = decode_result(replies[0])
        assert not bad.ok and bad.key == "?"
        assert decode_result(replies[1]).ok

    def test_simulation_error_becomes_error_result(self):
        spec = make_spec(app="NOPE")
        replies = self.run_worker([encode_job(spec.key, spec) + "\n"])
        result = decode_result(replies[0])
        assert not result.ok
        assert "NOPE" in result.error

    def test_cache_read_through(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(tmp_path / "cache")
        warm = ExperimentRunner(cache=cache, use_cache=True)
        expected = warm.run(spec)

        replies = self.run_worker(
            [encode_job(spec.key, spec) + "\n"],
            cache=ResultCache(tmp_path / "cache"),
        )
        result = decode_result(replies[0])
        assert result.ok
        assert result.seconds == 0.0  # served from cache, not simulated
        assert result.payload.instructions == expected.instructions

    def test_cache_populated_by_worker(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(tmp_path / "cache")
        self.run_worker([encode_job(spec.key, spec) + "\n"], cache=cache)
        assert cache.get(cache.key_for(spec)) is not MISS


# ---------------------------------------------------------------------------
# Loopback executor: the wire protocol without the network
# ---------------------------------------------------------------------------
class TestLoopbackExecutor:
    def test_matches_inline(self, inline_results):
        runner = ExperimentRunner(use_cache=False, executor="loopback")
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.dispatched == len(SPECS)
        assert runner.stats.simulated == len(SPECS)
        assert runner.stats.retried == 0

    @pytest.mark.parametrize("hook", ["mutate_job", "mutate_result"])
    @pytest.mark.parametrize("kind", ["truncate", "flip"])
    def test_single_corruption_is_retried(self, hook, kind, inline_results):
        runner = ExperimentRunner(use_cache=False)
        executor = LoopbackExecutor(
            stats=runner.stats, **{hook: corrupt_once(kind)}
        )
        runner.executor = executor
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.retried >= 1
        assert runner.stats.requeued >= 1

    def test_persistent_corruption_degrades_in_process(self, inline_results):
        runner = ExperimentRunner(use_cache=False)
        runner.executor = LoopbackExecutor(
            stats=runner.stats, mutate_result=corrupt_always("truncate")
        )
        with pytest.warns(RuntimeWarning, match="gave up"):
            results = runner.run_many(SPECS)
        assert_matches_inline(results, inline_results)
        # Every job exhausted its wire attempts, then ran in-process.
        assert runner.stats.simulated == len(SPECS)

    def test_simulation_error_propagates(self):
        runner = ExperimentRunner(use_cache=False, executor="loopback")
        with pytest.raises(RemoteJobError, match="NOPE"):
            runner.run(make_spec(app="NOPE"))


# ---------------------------------------------------------------------------
# Pool executor (explicit)
# ---------------------------------------------------------------------------
class TestPoolExecutor:
    def test_matches_inline(self, inline_results):
        runner = ExperimentRunner(
            workers=2, use_cache=False, executor="pool"
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.dispatched == len(SPECS)

    def test_auto_choice_still_uses_pool(self, inline_results):
        """executor=None + workers>1 keeps the historical pool path."""
        runner = ExperimentRunner(workers=2, use_cache=False, executor=None)
        runner.executor = None  # force auto even under $REPRO_EXECUTOR
        assert_matches_inline(runner.run_many(SPECS), inline_results)

    def test_unknown_executor_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ExperimentRunner(use_cache=False, executor="carrier-pigeon")


# ---------------------------------------------------------------------------
# Remote executor: real worker subprocesses over the wire
# ---------------------------------------------------------------------------
class TestRemoteExecutor:
    def remote_runner(self, **kwargs):
        kwargs.setdefault("use_cache", False)
        kwargs.setdefault("executor", "remote")
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("backoff", 0.01)
        return ExperimentRunner(**kwargs)

    def test_matches_inline(self, inline_results):
        runner = self.remote_runner()
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.dispatched == len(SPECS)
        assert runner.stats.worker_deaths == 0

    def test_worker_killed_mid_job(self, tmp_path, inline_results):
        runner = self.remote_runner(
            hosts=["a"],
            worker_command=flaky_worker_command("die", tmp_path / "marker"),
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.worker_deaths >= 1
        assert runner.stats.requeued >= 1
        assert runner.stats.retried >= 1

    def test_response_timeout_requeues(self, tmp_path, inline_results):
        runner = self.remote_runner(
            hosts=["a"],
            job_timeout=2.0,
            worker_command=flaky_worker_command("hang", tmp_path / "marker"),
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.worker_deaths >= 1
        assert runner.stats.retried >= 1

    def test_corrupted_worker_output(self, tmp_path, inline_results):
        runner = self.remote_runner(
            hosts=["a"],
            worker_command=flaky_worker_command("garbage", tmp_path / "marker"),
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.worker_deaths >= 1

    def test_banner_instead_of_hello(self, tmp_path, inline_results):
        """An SSH-style banner on stdout must recycle the worker, not
        be mistaken for protocol."""
        runner = self.remote_runner(
            hosts=["a"],
            worker_command=flaky_worker_command("banner", tmp_path / "marker"),
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        assert runner.stats.worker_deaths >= 1

    def test_unlaunchable_command_degrades(self, inline_results):
        runner = self.remote_runner(
            worker_command="/nonexistent/worker-binary --serve"
        )
        with pytest.warns(RuntimeWarning, match="unavailable"):
            results = runner.run_many(SPECS)
        assert_matches_inline(results, inline_results)
        assert runner.stats.pool_fallbacks == 1

    def test_permanently_broken_worker_degrades(self, inline_results):
        """A command that speaks garbage forever must never wedge the
        sweep: retries exhaust, the engine finishes in-process."""
        runner = self.remote_runner(
            hosts=["a"],
            worker_command='{python} -c "print(42)"',
        )
        with pytest.warns(RuntimeWarning):
            results = runner.run_many(SPECS)
        assert_matches_inline(results, inline_results)
        assert runner.stats.simulated == len(SPECS)

    def test_simulation_error_propagates(self):
        runner = self.remote_runner(hosts=["a"])
        with pytest.raises(RemoteJobError, match="NOPE"):
            runner.run(make_spec(app="NOPE"))

    def test_worker_side_cache_read_through(self, tmp_path, inline_results):
        """Workers launched with --cache-dir serve hits without
        simulating; the record's 0.0s wall-clock is the tell."""
        cache_dir = tmp_path / "shared-cache"
        warm = ExperimentRunner(cache=ResultCache(cache_dir), use_cache=True)
        warm.run_many(SPECS)

        runner = self.remote_runner(
            hosts=["a"],
            worker_command=(
                "{python} -u -m repro worker --cache-dir " + str(cache_dir)
            ),
        )
        assert_matches_inline(runner.run_many(SPECS), inline_results)
        run_records = [r for r in runner.stats.records if r.source == "run"]
        assert run_records and all(r.seconds == 0.0 for r in run_records)


# ---------------------------------------------------------------------------
# Cache backends under fault injection
# ---------------------------------------------------------------------------
class TestSharedCacheBackend:
    def shared_cache(self, tmp_path) -> ResultCache:
        return ResultCache(backend=SharedDirectoryBackend(tmp_path / "cache"))

    def test_round_trip(self, tmp_path):
        cache = self.shared_cache(tmp_path)
        cache.put("ab" * 16, {"payload": 1})
        assert cache.get("ab" * 16) == {"payload": 1}

    def test_first_writer_wins(self, tmp_path):
        """Read-through under the lock: a key that already landed is
        never rewritten (deterministic payloads make this sound)."""
        cache = self.shared_cache(tmp_path)
        cache.put("cd" * 16, "first")
        cache.put("cd" * 16, "second")
        assert cache.get("cd" * 16) == "first"

    def test_concurrent_writers_race_one_key(self, tmp_path):
        cache = self.shared_cache(tmp_path)
        key = "ef" * 16
        barrier = threading.Barrier(2)
        errors = []

        def writer(tag):
            try:
                barrier.wait(timeout=5)
                for _ in range(20):
                    ResultCache(
                        backend=SharedDirectoryBackend(tmp_path / "cache")
                    ).put(key, {"writer": tag, "blob": "x" * 4096})
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        value = cache.get(key)
        assert value is not MISS
        assert value["writer"] in ("a", "b")  # a complete entry, never torn

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        cache = self.shared_cache(tmp_path)
        key = "12" * 16
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(key) is MISS
        assert not path.exists()  # discarded, will be rewritten cleanly

    def test_stale_schema_version_is_miss(self, tmp_path):
        cache = self.shared_cache(tmp_path)
        key = "34" * 16
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            pickle.dumps(
                {"schema": CACHE_SCHEMA_VERSION - 1, "key": key, "payload": 1}
            )
        )
        assert cache.get(key) is MISS

    def test_salt_mismatch_misses_and_resimulates(self, tmp_path, monkeypatch):
        spec = make_spec()
        first = ExperimentRunner(cache=self.shared_cache(tmp_path))
        first.run(spec)
        assert first.stats.simulated == 1

        monkeypatch.setenv("REPRO_CACHE_SALT", "different-epoch")
        second = ExperimentRunner(cache=self.shared_cache(tmp_path))
        second.run(spec)
        assert second.stats.simulated == 1  # salted key changed: clean miss
        assert second.stats.cache_hits == 0

    def test_read_only_cache_dir_degrades(self, tmp_path):
        """Writes into an unwritable cache warn and continue."""
        backend = FlakyBackend(
            SharedDirectoryBackend(tmp_path / "cache"),
            fail_on=1,
            method="write",
            exc=PermissionError("read-only filesystem"),
        )
        runner = ExperimentRunner(cache=ResultCache(backend=backend))
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            result = runner.run(make_spec())
        assert result.instructions > 0
        assert runner.stats.simulated == 1

    def test_flaky_write_on_nth_call(self, tmp_path):
        """Cache-write failure on the 2nd job: that entry is simply not
        cached; every other entry lands and no job is lost."""
        backend = FlakyBackend(
            SharedDirectoryBackend(tmp_path / "cache"), fail_on=2, method="write"
        )
        runner = ExperimentRunner(cache=ResultCache(backend=backend))
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            results = runner.run_many(SPECS)
        assert len(results) == len(SPECS)
        assert runner.stats.simulated == len(SPECS)
        assert ResultCache(backend=backend.inner).info().entries == len(SPECS) - 1

    def test_flaky_read_degrades_to_resimulation(self, tmp_path):
        backend = FlakyBackend(
            SharedDirectoryBackend(tmp_path / "cache"), fail_on=1, method="read"
        )
        warm = ExperimentRunner(cache=ResultCache(backend=backend.inner))
        expected = warm.run(make_spec())

        runner = ExperimentRunner(cache=ResultCache(backend=backend))
        result = runner.run(make_spec())
        assert runner.stats.simulated == 1  # read failed -> re-simulated
        assert result.instructions == expected.instructions

    def test_lock_files_do_not_pollute_info(self, tmp_path):
        cache = self.shared_cache(tmp_path)
        cache.put("ab" * 16, 1)
        assert cache.info().entries == 1
        assert cache.clear() == 1


# ---------------------------------------------------------------------------
# Key stability (property-style)
# ---------------------------------------------------------------------------
class TestKeyStability:
    def canonical_spec(self):
        return make_spec(track_loads=True, cta_limit=4)

    def test_key_identical_in_child_process(self):
        """stable_hash must not depend on PYTHONHASHSEED, interning, or
        any other per-process state: a child computes the same key."""
        child = (
            "from repro.config import scaled_config\n"
            "from repro.runner import JobSpec\n"
            "spec = JobSpec.build('S2', 'baseline',"
            " scaled_config(num_sms=1, window_cycles=600), scale=0.05,"
            " overrides={'track_loads': True, 'cta_limit': 4})\n"
            "print(spec.key)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True,
            text=True,
            env=_worker_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == self.canonical_spec().key

    def test_key_invariant_under_override_insertion_order(self):
        items = [("a", 1), ("b", 2.5), ("c", "x")]
        keys = {
            JobSpec.build("S2", "baseline", CFG, overrides=dict(perm)).key
            for perm in permutations(items)
        }
        assert len(keys) == 1

    def test_key_survives_pickle_round_trip(self):
        spec = self.canonical_spec()
        assert pickle.loads(pickle.dumps(spec)).key == spec.key

    def test_every_single_field_mutation_changes_key(self):
        base = self.canonical_spec()
        mutations = {
            "app": make_spec(app="LI", track_loads=True, cta_limit=4),
            "arch": make_spec(arch="linebacker", track_loads=True, cta_limit=4),
            "scale": make_spec(scale=0.06, track_loads=True, cta_limit=4),
            "seed": make_spec(
                config=replace(CFG, seed=CFG.seed + 1),
                track_loads=True,
                cta_limit=4,
            ),
            "deep config": make_spec(
                config=replace(CFG, gpu=CFG.gpu.with_l1_size(16 * 1024)),
                track_loads=True,
                cta_limit=4,
            ),
            "override value": make_spec(track_loads=True, cta_limit=5),
            "override removed": make_spec(track_loads=True),
            "override added": make_spec(
                track_loads=True, cta_limit=4, extra=True
            ),
        }
        keys = {"base": base.key}
        for name, mutant in mutations.items():
            keys[name] = mutant.key
        assert len(set(keys.values())) == len(keys), (
            "key collision between field mutations: "
            f"{ {k: v[:8] for k, v in keys.items()} }"
        )


# ---------------------------------------------------------------------------
# RunnerStats report
# ---------------------------------------------------------------------------
class TestRunnerStatsReport:
    def test_to_dict_is_json_serializable(self):
        runner = ExperimentRunner(use_cache=False, executor="loopback")
        runner.run_many([SPECS[0], SPECS[0]])
        report = json.loads(json.dumps(runner.stats.to_dict()))
        assert report["simulated"] == 1
        assert report["coalesced"] == 1
        assert report["dispatched"] == 1
        assert len(report["records"]) == 2
        assert {r["source"] for r in report["records"]} == {"run", "coalesced"}

    def test_counters_default_zero(self):
        stats = RunnerStats()
        report = stats.to_dict(include_records=False)
        assert "records" not in report
        assert report["retried"] == 0
        assert report["requeued"] == 0
        assert report["worker_deaths"] == 0


# ---------------------------------------------------------------------------
# Directory backend keeps historical behaviour
# ---------------------------------------------------------------------------
class TestDirectoryBackendCompat:
    def test_default_cache_uses_directory_backend(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert isinstance(cache.backend, DirectoryBackend)
        assert not isinstance(cache.backend, SharedDirectoryBackend)
        assert cache.root == tmp_path / "cache"

    def test_root_and_backend_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ResultCache(tmp_path, backend=DirectoryBackend(tmp_path))

    def test_last_writer_wins_without_lock(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" * 16, "first")
        cache.put("ab" * 16, "second")
        assert cache.get("ab" * 16) == "second"
