"""Unit tests for the DRAM bandwidth server and the shared L2."""

import pytest

from repro.config import GPUConfig
from repro.memory.dram import DRAMModel
from repro.memory.l2 import L2Cache


class TestDRAM:
    def test_idle_access_latency(self):
        dram = DRAMModel(lines_per_cycle=1.0, access_latency=100)
        assert dram.access(0) == 101

    def test_bandwidth_serializes_requests(self):
        dram = DRAMModel(lines_per_cycle=0.5, access_latency=0)
        first = dram.access(0)
        second = dram.access(0)
        assert second - first == pytest.approx(2, abs=1)

    def test_queue_delay_grows_under_load(self):
        dram = DRAMModel(lines_per_cycle=0.25, access_latency=10)
        for _ in range(10):
            dram.access(0)
        assert dram.queue_delay(0) == pytest.approx(40, abs=1)

    def test_channel_drains_over_time(self):
        dram = DRAMModel(lines_per_cycle=0.5, access_latency=0)
        dram.access(0)
        assert dram.queue_delay(1000) == 0.0

    def test_read_write_accounting(self):
        dram = DRAMModel(lines_per_cycle=1.0)
        dram.access(0)
        dram.access(0, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.bytes_transferred == 256

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMModel(lines_per_cycle=0)

    def test_paper_bandwidth_conversion(self):
        """Table 1: 352.5 GB/s at 1126 MHz is ~2.45 lines/cycle."""
        cfg = GPUConfig()
        assert cfg.dram_lines_per_cycle == pytest.approx(2.446, abs=0.01)


class TestL2:
    def make(self, lines_per_cycle=4.0, size=64 * 1024):
        dram = DRAMModel(lines_per_cycle=2.0, access_latency=200)
        return L2Cache(size, 8, latency=100, dram=dram, lines_per_cycle=lines_per_cycle)

    def test_miss_goes_to_dram_then_hits(self):
        l2 = self.make()
        miss_ready = l2.read(42, 0)
        hit_ready = l2.read(42, 1000)
        assert miss_ready > 100  # L2 latency + DRAM
        assert hit_ready == 1000 + 100

    def test_write_through_invalidates(self):
        l2 = self.make()
        l2.read(7, 0)
        l2.write(7, 10)
        assert l2.cache.probe(7) is None

    def test_port_bandwidth_queues_requests(self):
        """The L2 port serializes: heavy traffic sees growing delay
        (the congestion that makes thrashing expensive, Section 2.2)."""
        l2 = self.make(lines_per_cycle=0.5)
        l2.read(0, 0)
        completions = [l2.read(0, 0) for _ in range(20)]
        assert completions[-1] > completions[0]
        assert l2.mean_queue_delay > 0

    def test_rejects_zero_bandwidth(self):
        dram = DRAMModel(lines_per_cycle=1.0)
        with pytest.raises(ValueError):
            L2Cache(64 * 1024, 8, 100, dram, lines_per_cycle=0)
