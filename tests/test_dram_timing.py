"""Tests for the bank-level DRAM timing model (Table 1 timing row)."""

import pytest

from dataclasses import replace

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import load
from repro.gpu.trace import from_instruction_lists
from repro.memory.dram_timing import DRAMTimings, TimingDRAMModel


def make(channels=2, banks=4, lines_per_row=4, bw=1.0, latency=100):
    return TimingDRAMModel(
        lines_per_cycle=bw,
        access_latency=latency,
        num_channels=channels,
        banks_per_channel=banks,
        lines_per_row=lines_per_row,
    )


class TestTimings:
    def test_paper_table1_values(self):
        t = DRAMTimings()
        assert (t.rcd, t.rp, t.rc, t.rrd, t.cl, t.wr, t.ras) == (
            12.0, 12.0, 40.0, 5.5, 12.0, 12.0, 28.0
        )


class TestAddressMapping:
    def test_consecutive_lines_stripe_channels(self):
        dram = make(channels=4)
        assert [dram.channel_of(a) for a in range(4)] == [0, 1, 2, 3]

    def test_bank_interleaving(self):
        dram = make(channels=2, banks=4)
        # Same channel, successive per-channel lines -> successive banks.
        assert dram.bank_of(0) == 0
        assert dram.bank_of(2) == 1
        assert dram.bank_of(4) == 2

    def test_row_groups_lines(self):
        dram = make(channels=1, banks=1, lines_per_row=4)
        assert dram.row_of(0) == dram.row_of(3)
        assert dram.row_of(4) == 1


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = make()
        dram.access(0, line_addr=0)
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = make(channels=1, banks=1, lines_per_row=8)
        dram.access(0, line_addr=0)
        dram.access(500, line_addr=1)
        assert dram.stats.row_hits == 1

    def test_row_hit_faster_than_row_miss(self):
        dram = make(channels=1, banks=1, lines_per_row=8)
        miss_done = dram.access(0, line_addr=0)
        hit_done = dram.access(1000, line_addr=1) - 1000
        miss_cost = miss_done - 0
        assert hit_done < miss_cost

    def test_row_conflict_pays_precharge_activate(self):
        dram = make(channels=1, banks=1, lines_per_row=4)
        t = dram.timings
        dram.access(0, line_addr=0)          # opens row 0
        done = dram.access(1000, line_addr=4)  # row 1: conflict
        # Must include at least RP + RCD + CL beyond the request time.
        assert done - 1000 >= t.rp + t.rcd + t.cl

    def test_trc_separates_same_bank_activates(self):
        dram = make(channels=1, banks=1, lines_per_row=1)
        t = dram.timings
        dram.access(0, line_addr=0)   # activate row 0 at some cycle A
        first_activate = dram._banks[0][0].last_activate
        dram.access(0, line_addr=1)   # immediate conflicting activate
        second_activate = dram._banks[0][0].last_activate
        assert second_activate - first_activate >= t.rc

    def test_trrd_separates_cross_bank_activates(self):
        dram = make(channels=1, banks=4, lines_per_row=1)
        t = dram.timings
        dram.access(0, line_addr=0)   # bank 0
        a0 = dram._last_activate_in_channel[0]
        dram.access(0, line_addr=1)   # bank 1, same channel
        a1 = dram._last_activate_in_channel[0]
        assert a1 - a0 >= t.rrd

    def test_write_recovery_delays_next_access(self):
        dram = make(channels=1, banks=1, lines_per_row=8)
        dram.access(0, line_addr=0, is_write=True)
        bank = dram._banks[0][0]
        write_done_plus_wr = bank.ready_at
        done = dram.access(0, line_addr=1)
        assert done >= write_done_plus_wr


class TestBandwidth:
    def test_channel_bus_serializes(self):
        dram = make(channels=1, banks=4, bw=0.5)
        first = dram.access(0, line_addr=0)
        second = dram.access(0, line_addr=2)  # different bank, same channel
        assert second > first

    def test_channels_run_in_parallel(self):
        dram = make(channels=2, banks=2, bw=0.5)
        done_a = dram.access(0, line_addr=0)  # channel 0
        done_b = dram.access(0, line_addr=1)  # channel 1
        # Independent channels: neither waits on the other's bus.
        assert abs(done_a - done_b) < dram.bus_cycles

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TimingDRAMModel(lines_per_cycle=1.0, num_channels=0)
        with pytest.raises(ValueError):
            TimingDRAMModel(lines_per_cycle=0)


class TestEndToEnd:
    def test_streaming_gets_high_row_hit_ratio(self):
        """Sequential lines mostly land in open rows."""
        dram = make(channels=2, banks=4, lines_per_row=16, bw=4.0)
        for a in range(512):
            dram.access(a * 2, line_addr=a)
        assert dram.stats.row_hit_ratio > 0.7

    def test_random_traffic_gets_low_row_hit_ratio(self):
        dram = make(channels=2, banks=4, lines_per_row=16, bw=4.0)
        for i in range(512):
            dram.access(i * 2, line_addr=(i * 2654435761) % (1 << 20))
        assert dram.stats.row_hit_ratio < 0.3

    def test_full_simulation_with_timing_dram(self):
        cfg = scaled_config(num_sms=1, window_cycles=500)
        cfg = replace(cfg, gpu=replace(cfg.gpu, dram_model="timing"))
        per_warp = [[[load(0x100, [w * 16 + i]) for i in range(12)] for w in range(4)]]
        kernel = from_instruction_lists("t", per_warp, regs_per_thread=8)
        result = run_kernel(cfg, kernel)
        assert result.instructions == 4 * 13
        assert result.dram_reads > 0

    def test_unknown_dram_model_rejected(self):
        cfg = scaled_config(num_sms=1)
        cfg = replace(cfg, gpu=replace(cfg.gpu, dram_model="quantum"))
        kernel = from_instruction_lists("t", [[[load(0x100, [1])]]], regs_per_thread=8)
        with pytest.raises(ValueError):
            run_kernel(cfg, kernel)
