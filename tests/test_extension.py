"""Tests for the SM extension interface and the PCAL bypass throttler."""

from repro.core.linebacker import BypassThrottler
from repro.gpu.extension import SMExtension
from repro.gpu.isa import alu, exit_inst
from repro.gpu.warp import Warp


def make_warp(launch_order):
    return Warp(
        warp_id=launch_order,
        cta_slot=0,
        launch_order=launch_order,
        trace=iter([alu(), exit_inst()]),
    )


class TestDefaultExtension:
    def test_all_hooks_are_noops(self):
        ext = SMExtension()
        assert ext.should_bypass(make_warp(0), 1, 0) is False
        assert ext.lookup_victim(1, 0, 0) is None
        assert ext.allocate_fill(1) is True
        assert ext.try_reactivate_cta(0) is False
        # The remaining hooks must simply not raise.
        ext.on_tick(0)
        ext.on_store(1, 0)
        ext.on_load_outcome(0, 0, 1, True, 0)
        ext.on_cta_launched(0, 0)
        ext.on_cta_finished(0, 0)
        ext.finalize(0)


class TestBypassThrottler:
    def test_no_bypass_during_warmup(self):
        bt = BypassThrottler()
        assert not bt.should_bypass(make_warp(50))

    def test_tokens_assigned_after_warmup(self):
        bt = BypassThrottler()
        bt.on_window(1000, 1000, resident_warps=32)
        bt.on_window(1000, 1000, resident_warps=32)
        assert bt.tokens == 30
        assert bt.should_bypass(make_warp(31))
        assert not bt.should_bypass(make_warp(0))

    def test_tokens_shrink_when_bypassing_helps(self):
        bt = BypassThrottler()
        bt.on_window(1000, 1000, 32)
        bt.on_window(1000, 1000, 32)
        before = bt.tokens
        bt.on_window(1300, 1000, 32)  # IPC jumped +30%
        assert bt.tokens < before

    def test_tokens_never_below_one(self):
        bt = BypassThrottler()
        bt.on_window(100, 1000, 4)
        bt.on_window(100, 1000, 4)
        for growth in range(2, 12):
            bt.on_window(100 * growth, 1000, 4)
        assert bt.tokens >= 1

    def test_tokens_capped_at_resident_warps(self):
        bt = BypassThrottler()
        bt.on_window(1000, 1000, 8)
        bt.on_window(1000, 1000, 8)
        for shrink in range(10):
            bt.on_window(max(1, 1000 - 300 * shrink), 1000, 8)
        assert bt.tokens <= 8
