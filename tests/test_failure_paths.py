"""Failure-injection and edge-path tests: MSHR exhaustion, cycle caps,
grids larger/smaller than the machine, and degenerate kernels."""

from dataclasses import replace

from repro.config import scaled_config
from repro.core.linebacker import linebacker_factory
from repro.gpu.gpu import GPU, run_kernel
from repro.gpu.isa import alu, exit_inst, load, store
from repro.gpu.trace import from_instruction_lists


def cfg(**kw):
    base = scaled_config(num_sms=1, window_cycles=500)
    if kw:
        base = replace(base, gpu=replace(base.gpu, **kw))
    return base


class TestMSHRExhaustion:
    def test_run_completes_with_tiny_mshr_file(self):
        """With 2 MSHRs, most loads must retry; the run still finishes
        and counts stalls."""
        config = cfg(l1_mshrs=2)
        per_warp = [[[load(0x100, [w * 50 + i]) for i in range(20)] for w in range(4)]]
        kernel = from_instruction_lists("mshr", per_warp, regs_per_thread=8)
        result = run_kernel(config, kernel, keep_objects=True)
        assert result.instructions == 4 * 21
        assert result.sms[0].mshr.stalls > 0

    def test_divergent_load_wider_than_mshr_file(self):
        """A single load touching more lines than there are MSHRs can
        never fully reserve entries; the (warp-wide) request must still
        complete rather than livelock."""
        config = cfg(l1_mshrs=4)
        kernel = from_instruction_lists(
            "wide", [[[load(0x100, list(range(16)))]]], regs_per_thread=8
        )
        result = run_kernel(config, kernel)
        # The run ends (possibly via the cycle cap guard) and the warp
        # either completed or the simulator terminated cleanly.
        assert result.cycles > 0

    def test_mshr_stall_does_not_lose_instructions(self):
        config = cfg(l1_mshrs=1)
        per_warp = [[[load(0x100, [i]) for i in range(10)] for _ in range(2)]]
        kernel = from_instruction_lists("stall", per_warp, regs_per_thread=8)
        result = run_kernel(config, kernel)
        assert result.instructions == 2 * 11


class TestCycleCap:
    def test_max_cycles_bounds_runaway(self):
        config = scaled_config(num_sms=1)
        config = replace(config, max_cycles=200)
        per_warp = [[[load(0x100, [i]) for i in range(5000)]]]
        kernel = from_instruction_lists("long", per_warp, regs_per_thread=8)
        result = run_kernel(config, kernel)
        assert result.cycles <= 200


class TestDegenerateGrids:
    def test_single_warp_single_instruction(self):
        kernel = from_instruction_lists("tiny", [[[exit_inst()]]], regs_per_thread=8)
        result = run_kernel(cfg(), kernel)
        assert result.instructions == 1

    def test_more_sms_than_ctas(self):
        config = scaled_config(num_sms=4, window_cycles=500)
        kernel = from_instruction_lists("small", [[[alu()]]], regs_per_thread=8)
        result = run_kernel(config, kernel)
        assert result.instructions == 2
        # Three SMs never received work and must still drain cleanly.
        assert all(sm.done for sm in result.sms)

    def test_store_only_kernel(self):
        per_warp = [[[store(0x200, [i]) for i in range(10)]]]
        kernel = from_instruction_lists("stores", per_warp, regs_per_thread=8)
        result = run_kernel(cfg(), kernel)
        assert result.traffic.store_write_lines == 10

    def test_linebacker_on_degenerate_kernel(self):
        """Linebacker attached to a kernel too short for even one
        monitoring window must not throttle or corrupt anything."""
        config = scaled_config(num_sms=1, window_cycles=5000)
        kernel = from_instruction_lists(
            "short", [[[load(0x100, [1]), alu()]]], regs_per_thread=8
        )
        result = run_kernel(
            config, kernel, extension_factory=linebacker_factory(config.linebacker)
        )
        ext = result.extensions[0]
        assert result.instructions == 3
        assert ext.stats.throttle_events == 0
        assert ext.stats.victim_reads_corrupt == 0


class TestRegisterPressureEdge:
    def test_kernel_using_entire_register_file(self):
        """regs/thread x warps = the whole file: occupancy 1 CTA."""
        kernel = from_instruction_lists(
            "fat", [[[alu()] for _ in range(8)] for _ in range(3)],
            regs_per_thread=256,
        )
        config = cfg()
        gpu = GPU(config, kernel)
        assert all(len(sm.ctas) <= 1 for sm in gpu.sms)
        result = gpu.run()
        assert result.instructions == 3 * 8 * 2  # ALU + EXIT per warp
