"""Seeded scenario fuzzer: deterministic generation, classification
gates, the differential engine-invariant harness, greedy minimization,
and the ``python -m repro fuzz`` CLI."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.workloads.fuzz import (
    FAMILIES,
    check_gates,
    differential_check,
    fuzz_workload,
    generate_corpus,
    minimize,
)
from repro.workloads.generator import Pattern
from repro.workloads.spec import (
    load_workload_file,
    validate_workload,
    workload_hash,
)

SEED = 2019


def iter_loads(spec):
    for tenant in spec.tenants:
        for phase in tenant.phases:
            yield from phase.loads


class TestGeneration:
    def test_deterministic_per_seed_and_index(self):
        for index in range(4):
            a = fuzz_workload(SEED, index)
            b = fuzz_workload(SEED, index)
            assert a == b
            assert workload_hash(a) == workload_hash(b)

    def test_different_seeds_differ(self):
        assert workload_hash(fuzz_workload(1, 0)) != workload_hash(
            fuzz_workload(2, 0)
        )

    def test_corpus_covers_every_family(self):
        corpus = generate_corpus(SEED, len(FAMILIES) * 2)
        names = [spec.name for spec in corpus]
        assert len(set(names)) == len(names)
        for family in FAMILIES:
            assert any(family.replace("_", "") in n for n in names), family

    def test_every_spec_validates(self):
        for spec in generate_corpus(SEED, 12):
            validate_workload(spec)

    def test_multi_tenant_family_has_tenants(self):
        spec = fuzz_workload(SEED, FAMILIES.index("multi_tenant"))
        assert len(spec.tenants) >= 2

    def test_phase_shift_family_has_phases(self):
        spec = fuzz_workload(SEED, FAMILIES.index("phase_shift"))
        assert any(len(t.phases) >= 2 for t in spec.tenants)


class TestGates:
    @pytest.mark.parametrize("index", range(8))
    def test_corpus_passes_classification_gates(self, index):
        problems, classification = check_gates(fuzz_workload(SEED, index))
        assert not problems, problems
        assert classification is not None and classification.loads

    def test_gates_catch_an_undeclared_stream(self):
        # A spec whose declared REUSE working set is huge relative to
        # its touches classifies as streaming -> the gate must fire.
        import dataclasses

        spec = fuzz_workload(SEED, 0)
        tenant = spec.tenants[0]
        phase = tenant.phases[0]
        bad_loads = tuple(
            dataclasses.replace(ld, working_set_lines=1 << 18,
                                pattern=Pattern.DIVERGENT)
            if ld.pattern is not Pattern.STREAM else ld
            for ld in phase.loads
        )
        bad = dataclasses.replace(spec, tenants=(
            dataclasses.replace(tenant, phases=(
                dataclasses.replace(phase, loads=bad_loads),
            ) + tenant.phases[1:]),
        ) + spec.tenants[1:])
        problems, _ = check_gates(bad)
        assert any("streaming" in p for p in problems)


class TestDifferentialHarness:
    def test_engine_invariants_hold(self):
        # One representative spec end to end; the CI fuzz job sweeps
        # the full corpus. thrash (index 0) exercises the victim path
        # hardest: L1-adversarial working sets with backups/restores.
        problems = differential_check(fuzz_workload(SEED, 0))
        assert not problems, problems


class TestMinimize:
    def test_shrinks_while_preserving_predicate(self):
        def fails(s):
            return any(
                ld.pattern is Pattern.REUSE and ld.working_set_lines > 10
                for ld in iter_loads(s)
            )

        spec = next(s for s in generate_corpus(SEED, 8) if fails(s))
        small = minimize(spec, fails)
        validate_workload(small)
        assert fails(small)
        assert sum(1 for _ in iter_loads(small)) <= sum(
            1 for _ in iter_loads(spec)
        )
        assert small.num_ctas <= spec.num_ctas

    def test_predicate_never_true_returns_input(self):
        spec = fuzz_workload(SEED, 0)
        assert minimize(spec, lambda s: False) == spec


class TestCLI:
    def test_fuzz_cli_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        rc = repro_main([
            "fuzz", "--seed", str(SEED), "--count", "3",
            "--out", str(out), "--no-simulate",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "3/3 specs passed" in captured.err
        files = sorted(out.glob("*.json"))
        assert len(files) == 3
        for path in files:
            spec = load_workload_file(path)
            assert spec.name == path.stem
            # The committed document is canonical JSON: reload+reserialize
            # is byte-stable, so corpus diffs are always meaningful.
            assert json.loads(path.read_text(encoding="utf-8"))

    def test_fuzz_cli_rejects_bad_count(self):
        with pytest.raises(SystemExit):
            repro_main(["fuzz", "--count", "0"])
