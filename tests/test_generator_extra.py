"""Additional workload-generator coverage: WARP scope, strides,
reuse bursts, weights, and the scramble hash quality."""

import sys
from collections import Counter
from pathlib import Path

from repro.workloads.generator import (
    LoadSpec,
    Pattern,
    Scope,
    _scramble,
    build_kernel,
)

sys.path.insert(0, str(Path(__file__).parent))
from workload_helpers import lines_of, make_app  # noqa: E402


def spec_with(load, iters=20, warps=2, ctas=2, alu=1):
    return make_app(load, iters=iters, warps=warps, ctas=ctas, alu=alu)


class TestWarpScope:
    def test_warp_regions_disjoint(self):
        kernel = build_kernel(
            spec_with(LoadSpec(0x100, Pattern.REUSE, 8, Scope.WARP))
        )
        w0 = set(lines_of(kernel, 0, 0))
        w1 = set(lines_of(kernel, 0, 1))
        other_cta = set(lines_of(kernel, 1, 0))
        assert not (w0 & w1)
        assert not (w0 & other_cta)


class TestReuseKnobs:
    def test_burst_repeats_lines(self):
        kernel = build_kernel(
            spec_with(LoadSpec(0x100, Pattern.REUSE, 64, reuse_burst=4), iters=8)
        )
        seq = lines_of(kernel, 0, 0)
        # Bursts of 4 identical addresses.
        assert seq[0] == seq[1] == seq[2] == seq[3]
        assert seq[4] == seq[5]

    def test_stride_advances_offset(self):
        kernel = build_kernel(
            spec_with(LoadSpec(0x100, Pattern.REUSE, 64, stride=3, reuse_burst=1), iters=4)
        )
        seq = lines_of(kernel, 0, 0)
        assert (seq[1] - seq[0]) % 64 == 3

    def test_weight_multiplies_issues(self):
        light = build_kernel(spec_with(LoadSpec(0x100, Pattern.REUSE, 8, weight=1)))
        heavy = build_kernel(spec_with(LoadSpec(0x100, Pattern.REUSE, 8, weight=3)))
        assert len(lines_of(heavy, 0, 0)) == 3 * len(lines_of(light, 0, 0))


class TestScrambleQuality:
    def test_deterministic(self):
        assert _scramble(5, 7, 0) == _scramble(5, 7, 0)

    def test_no_linear_structure_in_t(self):
        """Consecutive iterations must not form a permutation of the
        region — reuse happens at birthday rate (the regression that
        motivated the hash)."""
        ws = 97
        draws = [_scramble(t, 3, 0) % ws for t in range(4 * ws)]
        counts = Counter(draws)
        # A permutation would give every line exactly 4 touches; i.i.d.
        # draws give a spread including 0-touch and >6-touch lines.
        assert max(counts.values()) > 6
        assert len(set(range(ws)) - set(draws)) > 0

    def test_roughly_uniform(self):
        ws = 64
        draws = [_scramble(t, 9, 0) % ws for t in range(6400)]
        counts = Counter(draws)
        mean = 6400 / ws
        assert all(0.5 * mean < counts[i] < 1.5 * mean for i in range(ws))

    def test_lanes_decorrelated(self):
        a = [_scramble(t, 0, 0) % 128 for t in range(100)]
        b = [_scramble(t, 1, 0) % 128 for t in range(100)]
        assert sum(x == y for x, y in zip(a, b)) < 10
