"""Golden equivalence: the hot-path engine work must be invisible.

Every optimization in the cycle engine (int event kinds, the fused
issue/hint scan, inlined L1/MSHR fast paths, the lazy-deletion clock
heap, dict-ordered LRU) claims to be *semantically neutral*. This test
holds that claim to a bit-identical standard: the full statistics
fingerprint of a small (app, architecture) matrix — one cache-
sensitive app and one insensitive app under the baseline, the Best-SWL
oracle and Linebacker — must match the values pinned in
``golden_stats.json``.

If this test fails after an engine change, the change altered
simulation semantics. Either fix the change, or — only for an
*intentional* model change — regenerate the file with::

    PYTHONPATH=src python tests/golden.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from golden import (  # noqa: E402
    GOLDEN_APPS,
    GOLDEN_ARCHS,
    GOLDEN_FUZZ_SPECS,
    GOLDEN_PATH,
    fingerprint,
    fingerprint_value,
    golden_spec,
)
from repro.runner import ExperimentRunner  # noqa: E402


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        "golden_stats.json missing; generate it with "
        "`PYTHONPATH=src python tests/golden.py --write`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("arch", GOLDEN_ARCHS)
@pytest.mark.parametrize("app", GOLDEN_APPS)
def test_statistics_bit_identical(golden, app: str, arch: str) -> None:
    key = f"{arch}:{app}"
    assert key in golden, f"{key} not pinned; regenerate the golden file"
    current = fingerprint(app, arch)
    expected = golden[key]
    mismatches = {
        stat: (expected.get(stat), current.get(stat))
        for stat in set(expected) | set(current)
        if expected.get(stat) != current.get(stat)
    }
    assert not mismatches, (
        f"{key}: engine change shifted simulation semantics "
        f"(golden, current): {mismatches}"
    )


@pytest.mark.parametrize("arch", GOLDEN_ARCHS)
@pytest.mark.parametrize("name", GOLDEN_FUZZ_SPECS)
def test_fuzz_corpus_statistics_bit_identical(golden, name: str, arch: str) -> None:
    """The committed fuzz-corpus specs are pinned exactly like the
    suite apps: the declarative-workload build path (spec document ->
    compiled tenants -> trace) must stay semantically frozen too."""
    key = f"{arch}:{name}"
    assert key in golden, f"{key} not pinned; regenerate the golden file"
    current = fingerprint(name, arch)
    expected = golden[key]
    mismatches = {
        stat: (expected.get(stat), current.get(stat))
        for stat in set(expected) | set(current)
        if expected.get(stat) != current.get(stat)
    }
    assert not mismatches, (
        f"{key}: workload-spec path shifted simulation semantics "
        f"(golden, current): {mismatches}"
    )


def test_golden_file_covers_matrix(golden) -> None:
    expected_keys = {
        f"{arch}:{app}"
        for app in (*GOLDEN_APPS, *GOLDEN_FUZZ_SPECS)
        for arch in GOLDEN_ARCHS
    }
    assert expected_keys <= set(golden)


@pytest.mark.parametrize("executor", ["pool", "loopback", "remote"])
def test_executor_differential_bit_identical(golden, executor: str) -> None:
    """Every executor must reproduce the pinned golden matrix exactly.

    ``test_statistics_bit_identical`` already pins the in-process
    fingerprints, so matching the *same pinned values* through the
    pool, the wire loopback, and real worker subprocesses proves
    4-way inline/pool/loopback/remote equivalence by transitivity —
    "where a job runs" must be semantically invisible, down to the
    last counter, for the distributed runner to be sound.
    """
    specs = [
        golden_spec(app, arch) for app in GOLDEN_APPS for arch in GOLDEN_ARCHS
    ]
    # One corpus spec per executor leg: the attached WorkloadSpec must
    # survive pickling across the pool / wire / worker boundary intact.
    specs += [golden_spec(name, "linebacker") for name in GOLDEN_FUZZ_SPECS]
    runner = ExperimentRunner(workers=2, use_cache=False, executor=executor)
    results = runner.run_many(specs)
    mismatches = {}
    for spec, value in zip(specs, results):
        key = f"{spec.arch}:{spec.app}"
        current = fingerprint_value(spec.arch, value)
        expected = golden[key]
        for stat in set(expected) | set(current):
            if expected.get(stat) != current.get(stat):
                mismatches[f"{key}.{stat}"] = (
                    expected.get(stat),
                    current.get(stat),
                )
    assert not mismatches, (
        f"{executor} executor shifted simulation statistics "
        f"(golden, current): {mismatches}"
    )
    assert runner.stats.dispatched == len(specs)
