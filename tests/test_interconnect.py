"""Tests for the SM-to-L2 interconnect model."""

import pytest

from dataclasses import replace

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import load
from repro.gpu.trace import from_instruction_lists
from repro.memory.interconnect import Interconnect


class TestInterconnect:
    def test_idle_traversal_is_pure_latency(self):
        noc = Interconnect(num_sms=4, latency=12)
        assert noc.traverse(0, 100) == 112

    def test_injection_port_serializes_one_sm(self):
        noc = Interconnect(num_sms=4, latency=0, injection_interval=4.0,
                           crossbar_lines_per_cycle=100.0)
        first = noc.traverse(0, 0)
        second = noc.traverse(0, 0)
        assert second - first >= 3

    def test_other_sm_port_is_independent(self):
        noc = Interconnect(num_sms=4, latency=0, injection_interval=4.0,
                           crossbar_lines_per_cycle=100.0)
        noc.traverse(0, 0)
        assert noc.traverse(1, 0) == 0

    def test_crossbar_shared_by_all_sms(self):
        noc = Interconnect(num_sms=4, latency=0, injection_interval=0.01,
                           crossbar_lines_per_cycle=0.5)
        arrival = [noc.traverse(sm, 0) for sm in range(4)]
        assert arrival == sorted(arrival)
        assert arrival[-1] >= 6  # 4 requests at 2 cycles each

    def test_queue_stats_accumulate(self):
        noc = Interconnect(num_sms=2, latency=0, crossbar_lines_per_cycle=0.25)
        for _ in range(10):
            noc.traverse(0, 0)
        assert noc.stats.requests == 10
        assert noc.stats.mean_queue_delay > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Interconnect(num_sms=0)
        with pytest.raises(ValueError):
            Interconnect(num_sms=1, injection_interval=0)

    def test_end_to_end_with_noc_enabled(self):
        cfg = scaled_config(num_sms=2, window_cycles=500)
        cfg = replace(cfg, gpu=replace(cfg.gpu, noc_enable=True))
        per_warp = [[[load(0x100, [w * 8 + i]) for i in range(8)] for w in range(2)]]
        kernel = from_instruction_lists("noc", per_warp, regs_per_thread=8)
        result = run_kernel(cfg, kernel)
        assert result.instructions == 2 * 9  # one CTA, two warps

    def test_noc_adds_latency_versus_disabled(self):
        per_warp = [[[load(0x100, [i]) for i in range(30)] for _ in range(2)]]

        def run(enable):
            cfg = scaled_config(num_sms=1, window_cycles=500)
            cfg = replace(cfg, gpu=replace(cfg.gpu, noc_enable=enable))
            kernel = from_instruction_lists("noc", per_warp, regs_per_thread=8)
            return run_kernel(cfg, kernel)

        assert run(True).cycles >= run(False).cycles
