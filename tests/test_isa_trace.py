"""Unit tests for the instruction set and kernel traces."""

import pytest

from repro.gpu.isa import Instruction, Op, alu, exit_inst, hashed_pc, load, store
from repro.gpu.trace import KernelTrace, from_instruction_lists


class TestInstruction:
    def test_load_requires_addresses(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.LOAD, pc=1)

    def test_store_requires_addresses(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.STORE, pc=1)

    def test_alu_has_no_addresses(self):
        inst = alu(pc=4)
        assert not inst.is_memory
        assert inst.line_addrs == ()

    def test_load_constructor(self):
        inst = load(0x100, [1, 2, 3])
        assert inst.is_memory
        assert inst.line_addrs == (1, 2, 3)

    def test_store_constructor(self):
        inst = store(0x200, [7])
        assert inst.op is Op.STORE

    def test_exit_terminates(self):
        assert exit_inst().op is Op.EXIT

    def test_instructions_are_immutable(self):
        inst = alu()
        with pytest.raises(AttributeError):
            inst.pc = 5


class TestHashedPC:
    def test_fits_in_bits(self):
        for pc in (0, 1, 0xFFFF_FFFF, 0x1234_5678):
            assert 0 <= hashed_pc(pc, 5) < 32

    def test_deterministic(self):
        assert hashed_pc(0xABCD) == hashed_pc(0xABCD)

    def test_xor_fold_differs_for_nearby_pcs(self):
        """GPU kernels have <32 global loads; consecutive load PCs must
        map to different LM entries (paper Section 4)."""
        hpcs = {hashed_pc(0x100 + 4 * i) for i in range(8)}
        assert len(hpcs) == 8

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            hashed_pc(1, 0)

    def test_full_pc_folds(self):
        # 0b11111 repeated XORs to a stable value, spot-check manually.
        assert hashed_pc(0b11111_11111, 5) == 0


class TestKernelTrace:
    def test_register_accounting(self):
        trace = from_instruction_lists("t", [[[alu()]]], regs_per_thread=24)
        assert trace.warp_registers_per_warp == 24
        assert trace.register_bytes_per_cta == 24 * 128

    def test_exit_appended_when_missing(self):
        trace = from_instruction_lists("t", [[[alu(), alu()]]])
        insts = trace.materialize(0, 0)
        assert insts[-1].op is Op.EXIT
        assert len(insts) == 3

    def test_exit_not_duplicated(self):
        trace = from_instruction_lists("t", [[[alu(), exit_inst()]]])
        assert len(trace.materialize(0, 0)) == 2

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            from_instruction_lists("t", [])

    def test_rejects_ragged_ctas(self):
        with pytest.raises(ValueError):
            from_instruction_lists("t", [[[alu()]], [[alu()], [alu()]]])

    def test_factory_called_per_warp(self):
        calls = []

        def factory(cta, warp):
            calls.append((cta, warp))
            return iter([exit_inst()])

        trace = KernelTrace("t", 2, 2, 8, factory)
        trace.materialize(1, 0)
        assert calls == [(1, 0)]
