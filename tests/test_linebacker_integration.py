"""Integration tests for the full Linebacker extension on an SM.

These drive small kernels end-to-end and assert the paper's mechanism
invariants: selection happens for high-locality loads, victim hits
return exactly the data that was evicted (token correctness), streams
are filtered, throttled CTAs round-trip their registers, and disabled
mode leaves the baseline untouched.
"""

import pytest

from dataclasses import replace

from repro.config import scaled_config
from repro.core.linebacker import linebacker_factory
from repro.core.load_monitor import MonitorState
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import load
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel


def config(window=400):
    return scaled_config(num_sms=1, window_cycles=window)


def locality_kernel(n_ctas=4, warps=4, iters=120, ws=64, regs=16):
    """Warps hammering a small shared region: a high-locality load."""
    spec = AppSpec(
        name="loc",
        description="test",
        cache_sensitive=True,
        num_ctas=n_ctas,
        warps_per_cta=warps,
        regs_per_thread=regs,
        iterations=iters,
        alu_per_iteration=1,
        loads=(LoadSpec(0x100, Pattern.DIVERGENT, ws, Scope.GLOBAL, lines_per_access=1),),
    )
    return build_kernel(spec)


def streaming_kernel(n_ctas=4, warps=4, iters=150):
    spec = AppSpec(
        name="stream",
        description="test",
        cache_sensitive=False,
        num_ctas=n_ctas,
        warps_per_cta=warps,
        regs_per_thread=16,
        iterations=iters,
        alu_per_iteration=1,
        loads=(LoadSpec(0x100, Pattern.STREAM, 0),),
    )
    return build_kernel(spec)


def run_lb(cfg, kernel, lb_config=None):
    result = run_kernel(
        cfg,
        kernel,
        extension_factory=linebacker_factory(lb_config or cfg.linebacker),
        keep_objects=True,
    )
    return result, result.extensions[0]


class TestSelection:
    def test_high_locality_load_selected(self):
        cfg = config()
        result, ext = run_lb(cfg, locality_kernel())
        assert ext.load_monitor.state is MonitorState.SELECTED

    def test_streaming_kernel_disables_linebacker(self):
        """Paper: no high-locality load within the first two windows
        -> the application is not cache sensitive, LB turns off."""
        cfg = config()
        result, ext = run_lb(cfg, streaming_kernel())
        assert ext.load_monitor.state is MonitorState.DISABLED
        assert ext.stats.victim_hits == 0
        assert ext.stats.throttle_events == 0

    def test_disabled_linebacker_matches_baseline_perf(self):
        cfg = config()
        kernel = streaming_kernel()
        base = run_kernel(cfg, kernel)
        lb, _ = run_lb(cfg, kernel)
        assert lb.cycles == base.cycles
        assert lb.instructions == base.instructions


class TestVictimCacheCorrectness:
    def test_victim_hits_occur_and_are_never_corrupt(self):
        cfg = config()
        result, ext = run_lb(cfg, locality_kernel(ws=512))
        assert ext.stats.victim_hits > 0
        assert ext.stats.victim_reads_corrupt == 0

    def test_victim_hits_counted_as_reg_hits(self):
        cfg = config()
        result, ext = run_lb(cfg, locality_kernel(ws=512))
        assert result.sm_stats[0].victim_hits == ext.stats.victim_hits
        assert result.request_breakdown["reg_hit"] > 0

    def test_victim_space_respects_register_offset(self):
        """Victim lines may only live in registers >= the offset
        (RN 512-2047, paper Section 4.1)."""
        cfg = config()
        result, ext = run_lb(cfg, locality_kernel(ws=512))
        for vp in ext.vtt.active_partitions():
            assert vp.base_rn >= cfg.linebacker.register_offset

    def test_no_partition_overlaps_live_cta_registers(self):
        cfg = config()
        result, ext = run_lb(cfg, locality_kernel(ws=512))
        sm = result.sms[0]
        for vp in ext.vtt.active_partitions():
            for rn in vp.register_range:
                assert sm.register_file.owner_of(rn) is None


class TestStoreInvalidation:
    def test_store_invalidates_victim_copy(self):
        cfg = config(window=200)
        # One warp: monitored load gets selected, then a store to a
        # victim-resident line must invalidate the copy.
        insts = []
        for i in range(600):
            insts.append(load(0x100, [i % 48]))
        kernel_spec = locality_kernel(ws=48, iters=200)
        result, ext = run_lb(cfg, kernel_spec)
        before = ext.vtt.stats.store_invalidations
        # Directly exercise the hook against a line known to be cached.
        victims = [
            (vp, set_idx, way)
            for vp in ext.vtt.active_partitions()
            for set_idx, ways in enumerate(vp.entries)
            for way, e in enumerate(ways)
            if e.valid
        ]
        if not victims:
            pytest.skip("no victim lines at end of run")
        vp, set_idx, way = victims[0]
        line_addr = vp.entries[set_idx][way].tag * ext.vtt.num_sets + set_idx
        ext.on_store(line_addr, cycle=result.cycles)
        assert ext.vtt.stats.store_invalidations == before + 1
        rn = vp.register_number(set_idx, way)
        assert result.sms[0].register_file.peek(rn) is None


class TestThrottlingRoundTrip:
    def make(self):
        cfg = config(window=300)
        kernel = locality_kernel(n_ctas=12, warps=4, iters=200, ws=1024, regs=16)
        return cfg, kernel

    def test_throttle_backs_up_and_restores(self):
        cfg, kernel = self.make()
        result, ext = run_lb(cfg, kernel)
        if ext.stats.throttle_events == 0:
            pytest.skip("controller chose not to throttle this kernel")
        assert result.traffic.backup_write_lines > 0
        # Every backup eventually restored or its CTA finished.
        assert not ext._restoring

    def test_all_instructions_complete_despite_throttling(self):
        cfg, kernel = self.make()
        base = run_kernel(cfg, kernel)
        result, ext = run_lb(cfg, kernel)
        assert result.instructions == base.instructions

    def test_register_tokens_survive_roundtrip(self):
        """After the run, no register corruption was ever observed and
        every CTA retired all warps."""
        cfg, kernel = self.make()
        result, ext = run_lb(cfg, kernel)
        assert ext.stats.victim_reads_corrupt == 0
        assert result.sms[0].done


class TestAblationFlags:
    def test_victim_cache_disabled_never_reg_hits(self):
        cfg = config()
        lb = replace(cfg.linebacker, enable_victim_cache=False)
        result, ext = run_lb(cfg, locality_kernel(), lb)
        assert result.request_breakdown["reg_hit"] == 0

    def test_throttling_disabled_never_throttles(self):
        cfg = config()
        lb = replace(cfg.linebacker, enable_throttling=False)
        result, ext = run_lb(cfg, locality_kernel(ws=1024), lb)
        assert ext.stats.throttle_events == 0

    def test_unselective_mode_preserves_streams_too(self):
        """Figure 11's 'Victim Caching' keeps everything, so a pure
        streaming kernel still fills victim space."""
        cfg = config()
        lb = replace(
            cfg.linebacker, enable_selective=False, enable_throttling=False
        )
        # Mixed kernel: locality load selects LB, stream pollutes.
        spec = AppSpec(
            name="mix",
            description="test",
            cache_sensitive=True,
            num_ctas=4,
            warps_per_cta=4,
            regs_per_thread=16,
            iterations=150,
            alu_per_iteration=1,
            loads=(
                LoadSpec(0x100, Pattern.DIVERGENT, 64, Scope.GLOBAL, lines_per_access=1),
                LoadSpec(0x204, Pattern.STREAM, 0),
            ),
        )
        unselective, ext_u = run_lb(cfg, build_kernel(spec), lb)
        selective, ext_s = run_lb(
            cfg, build_kernel(spec), replace(lb, enable_selective=True)
        )
        if ext_s.load_monitor.state is not MonitorState.SELECTED:
            pytest.skip("locality load not selected in this configuration")
        # Selective mode must insert no more victim lines than the
        # unselective mode (stream evictions are filtered out).
        assert ext_s.stats.victim_inserts <= ext_u.stats.victim_inserts
