"""Self-tests for the ``repro.lint`` invariant checker.

The contract proven here, per pass: its ``case_<pass>_bad.py`` fixture
yields exactly the seeded findings (and only from that pass), while
the ``case_<pass>_clean.py`` twin yields nothing under *any* pass.
Plus: suppression comments, the baseline round-trip, fingerprint
stability under line movement, the CLI surface, and — the gate itself
— the real tree linting clean.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    Severity,
    all_passes,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: pass name -> (bad fixture, expected Counter of rule -> occurrences)
EXPECTED = {
    "determinism": (
        "case_determinism_bad.py",
        {
            "set-iteration": 2,  # one lexical, one through a branch join
            "id-keyed-dict": 1,
            "unseeded-random": 1,
            "wall-clock": 1,
            "float-identity": 1,
        },
    ),
    "thread-safety": (
        "case_thread_safety_bad.py",
        {
            "unguarded-attribute": 2,
            "unsynchronized-attribute": 4,
            "lock-order": 2,
            "lock-held-blocking": 2,
        },
    ),
    "protocol-drift": (
        "case_protocol_drift_bad.py",
        {"schema-twin-drift": 5},
    ),
    "slots": (
        "case_slots_bad.py",
        {"hot-class-no-slots": 1, "slots-attr-missing": 1},
    ),
    "capability": (
        "case_capability_bad.py",
        {
            "capability-flag-unresolved": 2,
            "hook-missing-flag": 1,
            "capability-gate-missing": 3,
            "capability-flag-pinned": 1,
            "backend-capability-mismatch": 1,
        },
    ),
    "pickle-safety": (
        "case_pickle_bad.py",
        {
            "factory-closure": 1,
            "factory-lambda": 2,
            "factory-local-class": 1,
            "registry-local-runner": 1,
        },
    ),
    "stats-parity": ("case_stats_bad.py", {"stats-parity": 1}),
}


def lint_fixture(name: str, **kwargs):
    return run_lint(paths=[FIXTURES / name], root=FIXTURES, **kwargs)


# ---------------------------------------------------------------------------
# Each pass catches exactly its seeded violations...
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pass_name", sorted(EXPECTED))
def test_bad_fixture_yields_exactly_the_seeded_findings(pass_name):
    fixture, expected = EXPECTED[pass_name]
    result = lint_fixture(fixture)
    assert Counter(f.rule for f in result.findings) == Counter(expected)
    # ... and every finding comes from the pass under test: no other
    # pass fires on this fixture.
    assert {f.pass_name for f in result.findings} == {pass_name}
    assert all(f.severity is Severity.ERROR for f in result.findings)
    assert all(f.path == fixture for f in result.findings)


@pytest.mark.parametrize("pass_name", sorted(EXPECTED))
def test_pass_filter_isolates_one_pass(pass_name):
    fixture, expected = EXPECTED[pass_name]
    result = lint_fixture(fixture, pass_names=[pass_name])
    assert result.passes_run == [pass_name]
    assert Counter(f.rule for f in result.findings) == Counter(expected)


# ---------------------------------------------------------------------------
# ... and stays silent on the behaviour-equivalent clean twin.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pass_name", sorted(EXPECTED))
def test_clean_twin_yields_nothing_under_any_pass(pass_name):
    fixture = EXPECTED[pass_name][0].replace("_bad", "_clean")
    result = lint_fixture(fixture)
    assert result.findings == []
    assert len(result.passes_run) == len(all_passes())


def test_the_no_event_bug_reconstruction_is_caught():
    """The ``best is _NO_EVENT`` float-identity bug must be flagged on
    the exact line that reconstructs it."""
    result = lint_fixture("case_determinism_bad.py", pass_names=["determinism"])
    hits = [f for f in result.findings if f.rule == "float-identity"]
    assert len(hits) == 1
    assert "best is _NO_EVENT" in hits[0].source_line


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------
def test_inline_suppression_by_rule(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()"
        "  # repro-lint: ignore[wall-clock] progress display only\n"
    )
    result = run_lint(paths=[bad], root=tmp_path)
    assert result.findings == []
    assert result.suppressed == 1


def test_inline_suppression_names_must_match(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro-lint: ignore[set-iteration]\n"
    )
    result = run_lint(paths=[bad], root=tmp_path)
    assert [f.rule for f in result.findings] == ["wall-clock"]
    assert result.suppressed == 0


def test_bare_ignore_suppresses_every_rule(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(
        "import time\n"
        "\n"
        "def stamp(memo, obj):\n"
        "    memo[id(obj)] = time.time()  # repro-lint: ignore\n"
    )
    result = run_lint(paths=[bad], root=tmp_path)
    assert result.findings == []
    assert result.suppressed == 2  # wall-clock and id-keyed-dict


# ---------------------------------------------------------------------------
# Baseline round-trip and fingerprint stability
# ---------------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    first = lint_fixture("case_determinism_bad.py")
    assert first.findings
    baseline = tmp_path / "lint_baseline.json"
    write_baseline(baseline, first.findings)
    assert load_baseline(baseline) == {f.fingerprint for f in first.findings}

    second = lint_fixture("case_determinism_bad.py", baseline_path=baseline)
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)


def test_fingerprint_survives_line_movement():
    a = Finding("wall-clock", "m", "x.py", 10, source_line="t = time.time()")
    b = Finding("wall-clock", "m", "x.py", 99, source_line="t = time.time()")
    c = Finding("wall-clock", "m", "x.py", 10, source_line="t2 = time.time()")
    assert a.fingerprint == b.fingerprint  # moving code keeps the entry
    assert a.fingerprint != c.fingerprint  # editing the line invalidates it


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = str(FIXTURES / "case_determinism_bad.py")
    clean = str(FIXTURES / "case_determinism_clean.py")

    assert lint_main([clean]) == 0
    capsys.readouterr()

    report = tmp_path / "lint-report.json"
    assert lint_main([bad, "--json", "--report", str(report)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 6
    assert json.loads(report.read_text()) == payload

    assert lint_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for lint in all_passes():
        assert lint.name in listing


def test_cli_unknown_pass_is_a_usage_error(capsys):
    code = lint_main(["--pass", "no-such-pass"])
    assert code == 2
    assert "no-such-pass" in capsys.readouterr().err


def test_module_entry_point_dispatches_to_lint(capsys):
    from repro.__main__ import main as repro_main

    clean = str(FIXTURES / "case_stats_clean.py")
    assert repro_main(["lint", clean]) == 0


# ---------------------------------------------------------------------------
# The gate itself: the real tree is clean.
# ---------------------------------------------------------------------------
def test_repository_tree_lints_clean():
    result = run_lint()
    assert result.findings == [], [f.location for f in result.findings]
    assert result.files_checked > 50
    assert len(result.passes_run) == 7
