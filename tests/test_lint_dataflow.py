"""Unit tests for the dataflow layer under ``repro.lint`` and the
passes built on it.

Covers, bottom-up:

* the CFG builder — branch joins, loop back-edges, ``with`` regions,
  ``try`` exception edges, dead code after ``return``;
* :class:`ReachingDefinitions` (may) and :class:`HeldLocks` (must)
  and the :func:`any_path_has` reachability helper;
* flow-sensitivity of the retrofitted determinism pass (a ``sorted``
  rebinding on any path suppresses ``set-iteration``; a seed placed
  *after* the draw no longer counts);
* required-justification suppressions for thread-safety findings;
* protocol-drift against copies of the **real** surface modules: the
  tree is in sync today, deleting a field one-sided is twin drift, and
  deleting it from both sides demands a version-constant bump that
  then clears the finding;
* the ``--sarif`` and ``--changed`` CLI surfaces.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

from repro.lint import run_lint, write_baseline
from repro.lint.cfg import build_cfg, stmt_owned_exprs
from repro.lint.dataflow import HeldLocks, ReachingDefinitions, any_path_has

SRC = Path(__file__).parent.parent / "src" / "repro"
FIXTURES = Path(__file__).parent / "lint_fixtures"


def fn_cfg(source: str):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    return fn, build_cfg(fn)


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------
def test_branch_join_merges_definitions():
    fn, cfg = fn_cfg(
        """
        def f(flag):
            x = 1
            if flag:
                x = 2
            return x
        """
    )
    rd = ReachingDefinitions(cfg)
    ret = fn.body[-1]
    values = {d.value.value for d in rd.reaching(ret, "x")}
    assert values == {1, 2}  # both arms survive the join (may-analysis)


def test_straight_line_redefinition_kills_the_old_binding():
    fn, cfg = fn_cfg(
        """
        def f():
            x = 1
            x = 2
            return x
        """
    )
    rd = ReachingDefinitions(cfg)
    values = {d.value.value for d in rd.reaching(fn.body[-1], "x")}
    assert values == {2}


def test_loop_back_edge_carries_the_body_definition_around():
    fn, cfg = fn_cfg(
        """
        def f(items):
            total = 0
            for item in items:
                total = total + item
            return total
        """
    )
    rd = ReachingDefinitions(cfg)
    loop = fn.body[1]
    body_stmt = loop.body[0]
    # On iteration 2+ the body's own assignment reaches the body again
    # (via head -> body with the back-edge folded into head's input).
    assert len(rd.reaching(body_stmt, "total")) == 2
    assert len(rd.reaching(fn.body[-1], "total")) == 2
    # ... and the loop target is defined by the For header itself.
    assert {d.node for d in rd.reaching(body_stmt, "item")} == {loop}


def test_parameters_reach_the_entry():
    fn, cfg = fn_cfg(
        """
        def f(a, b=1, *rest, **kw):
            return a
        """
    )
    rd = ReachingDefinitions(cfg)
    assert set(rd.defs_at(fn.body[0])) == {"a", "b", "rest", "kw"}


def test_with_region_annotates_held_contexts():
    fn, cfg = fn_cfg(
        """
        def f(self):
            with self._lock:
                self.count = 1
            self.done = True
        """
    )
    inside = fn.body[0].body[0]
    after = fn.body[1]
    assert cfg.held_at(inside) == ("self._lock",)
    assert cfg.held_at(after) == ()


def test_nested_with_regions_stack_outermost_first():
    fn, cfg = fn_cfg(
        """
        def f(self):
            with self._a:
                with self._b:
                    self.x = 1
        """
    )
    innermost = fn.body[0].body[0].body[0]
    assert cfg.held_at(innermost) == ("self._a", "self._b")


def test_code_after_return_is_indexed_but_unreachable():
    fn, cfg = fn_cfg(
        """
        def f():
            return 1
            x = 2
        """
    )
    dead = fn.body[1]
    assert cfg.block_of(dead) is not None  # analyses can still see it
    assert not cfg.reachable_between(fn.body[0], dead)


def test_try_body_reaches_handlers_and_rejoins():
    fn, cfg = fn_cfg(
        """
        def f():
            try:
                risky()
                x = 1
            except ValueError:
                x = 2
            return x
        """
    )
    body_call, body_assign = fn.body[0].body
    handler_assign = fn.body[0].handlers[0].body[0]
    # An exception may escape any try-body statement into the handler.
    assert cfg.reachable_between(body_call, handler_assign)
    rd = ReachingDefinitions(cfg)
    values = {d.value.value for d in rd.reaching(fn.body[-1], "x")}
    assert values == {1, 2}


def test_stmt_owned_exprs_covers_headers_only():
    fn, _ = fn_cfg(
        """
        def f(self, items, flag):
            if flag:
                pass
            for i in items:
                pass
            with self._lock:
                pass
            try:
                pass
            finally:
                pass
            x = 1
        """
    )
    if_s, for_s, with_s, try_s, assign = fn.body
    assert stmt_owned_exprs(if_s) == [if_s.test]
    assert stmt_owned_exprs(for_s) == [for_s.target, for_s.iter]
    assert stmt_owned_exprs(with_s) == [with_s.items[0].context_expr]
    assert stmt_owned_exprs(try_s) == []
    assert stmt_owned_exprs(assign) == [assign]  # simple stmt: whole subtree


# ---------------------------------------------------------------------------
# HeldLocks must-analysis and reachability
# ---------------------------------------------------------------------------
def test_explicit_acquire_is_held_until_released():
    fn, cfg = fn_cfg(
        """
        def f(self):
            self._lock.acquire()
            self.touch()
            self._lock.release()
            self.after()
        """
    )
    locks = HeldLocks(cfg)
    assert locks.held_at(fn.body[1]) == {"self._lock"}
    assert locks.held_at(fn.body[3]) == frozenset()


def test_release_on_one_path_is_not_held_after_the_join():
    fn, cfg = fn_cfg(
        """
        def f(self, flag):
            self._lock.acquire()
            if flag:
                self._lock.release()
            self.touch()
        """
    )
    locks = HeldLocks(cfg)
    # Must-analysis: held only when *every* path holds it.
    assert locks.held_at(fn.body[-1]) == frozenset()


def test_held_at_merges_lexical_with_and_explicit_acquire():
    fn, cfg = fn_cfg(
        """
        def f(self):
            self._io.acquire()
            with self._lock:
                self.touch()
        """
    )
    locks = HeldLocks(cfg)
    assert locks.held_at(fn.body[1].body[0]) == {"self._io", "self._lock"}


def test_any_path_has_respects_direction():
    fn, cfg = fn_cfg(
        """
        def f(flag):
            if flag:
                prepare()
            launch()
        """
    )
    prepare = fn.body[0].body[0]
    launch = fn.body[1]

    def is_call(name):
        return lambda s: any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == name
            for n in ast.walk(s)
        )

    assert any_path_has(cfg, launch, is_call("prepare"))
    assert not any_path_has(cfg, prepare, is_call("launch"))


# ---------------------------------------------------------------------------
# Flow-sensitive determinism
# ---------------------------------------------------------------------------
def lint_snippet(tmp_path, source, passes=None):
    target = tmp_path / "snippet.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(paths=[target], root=tmp_path, pass_names=passes)


def test_sorted_on_any_path_suppresses_set_iteration(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def norm(flag):
            ids = {1, 2}
            if flag:
                ids = sorted(ids)
            return [i for i in ids]
        """,
    )
    assert result.findings == []


def test_set_on_every_path_still_flags(tmp_path):
    result = lint_snippet(
        tmp_path,
        """
        def leak(flag):
            ids = {1, 2}
            if flag:
                ids = {3, 4}
            return [i for i in ids]
        """,
    )
    assert [f.rule for f in result.findings] == ["set-iteration"]


def test_seed_before_draw_is_clean_seed_after_is_not(tmp_path):
    clean = lint_snippet(
        tmp_path,
        """
        import random

        def roll():
            random.seed(7)
            return random.random()
        """,
    )
    assert clean.findings == []

    late = lint_snippet(
        tmp_path,
        """
        import random

        def roll():
            value = random.random()
            random.seed(7)
            return value
        """,
    )
    assert [f.rule for f in late.findings] == ["unseeded-random"]


# ---------------------------------------------------------------------------
# Required-justification suppressions (thread-safety rules)
# ---------------------------------------------------------------------------
RACY_CLASS = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0

        def put(self, v):
            self.value = v  # repro-lint: ignore[thread-safety]{note}

        def get(self):
            with self._lock:
                return self.value
"""


def test_suppression_without_justification_keeps_the_finding(tmp_path):
    result = lint_snippet(tmp_path, RACY_CLASS.format(note=""))
    assert [f.rule for f in result.findings] == ["unguarded-attribute"]
    assert "justification" in result.findings[0].message
    assert result.suppressed == 0


def test_suppression_with_justification_is_honoured(tmp_path):
    result = lint_snippet(
        tmp_path, RACY_CLASS.format(note=" single aligned store; GIL-atomic")
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# Protocol drift against the real surface modules
# ---------------------------------------------------------------------------
SURFACE_FILES = (
    "options.py",
    "runner/wire.py",
    "runner/spec.py",
    "runner/cache.py",
    "service/schema.py",
)


def copy_surfaces(tmp_path):
    for rel in SURFACE_FILES:
        dest = tmp_path / Path(rel).name
        dest.write_text((SRC / rel).read_text(encoding="utf-8"), encoding="utf-8")
    return tmp_path


def drift_lint(root, baseline=None):
    return run_lint(
        paths=[root], root=root, baseline_path=baseline,
        pass_names=["protocol-drift"],
    )


def mutate(path: Path, old: str, new: str) -> None:
    text = path.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor vanished from {path.name}: {old!r}"
    path.write_text(text.replace(old, new), encoding="utf-8")


def test_the_real_surfaces_are_in_sync(tmp_path):
    result = drift_lint(copy_surfaces(tmp_path))
    assert result.findings == []
    assert set(result.schemas) >= {
        "wire-hello", "config", "http-job", "run-options", "jobspec",
    }


def test_one_sided_field_deletion_is_twin_drift(tmp_path):
    root = copy_surfaces(tmp_path)
    mutate(root / "wire.py", '            "pid": os.getpid(),\n', "")
    result = drift_lint(root)
    assert [f.rule for f in result.findings] == ["schema-twin-drift"]
    assert "'pid'" in result.findings[0].message


def test_run_options_field_deletion_demands_a_version_bump(tmp_path):
    root = copy_surfaces(tmp_path)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, [], schemas=drift_lint(root).schemas)
    assert drift_lint(root, baseline).findings == []  # in sync, versioned

    mutate(root / "options.py", "    timeseries: bool = False\n", "")
    drifted = drift_lint(root, baseline)
    assert [f.rule for f in drifted.findings] == ["schema-version-unbumped"]
    assert "run-options" in drifted.findings[0].message

    mutate(root / "schema.py", "JOB_SCHEMA_VERSION = 3", "JOB_SCHEMA_VERSION = 4")
    assert drift_lint(root, baseline).findings == []  # bump acknowledges it


def test_http_job_field_deletion_demands_a_version_bump(tmp_path):
    root = copy_surfaces(tmp_path)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, [], schemas=drift_lint(root).schemas)

    # Drop "options" from *both* sides so the twins stay consistent:
    # only the recorded fingerprint disagrees.
    mutate(root / "schema.py", 'doc["options"] = opt_fields', "pass")
    mutate(root / "schema.py", '"options", "overrides", "workload"}',
           '"overrides", "workload"}')
    mutate(root / "schema.py", 'opt_doc = doc.get("options", {})', "opt_doc = {}")
    drifted = drift_lint(root, baseline)
    assert [f.rule for f in drifted.findings] == ["schema-version-unbumped"]
    assert "http-job" in drifted.findings[0].message

    mutate(root / "schema.py", "JOB_SCHEMA_VERSION = 3", "JOB_SCHEMA_VERSION = 4")
    assert drift_lint(root, baseline).findings == []


# ---------------------------------------------------------------------------
# Protocol drift on the workload-spec surface (fixture twins)
# ---------------------------------------------------------------------------
def test_workload_spec_fixture_pair():
    bad = drift_lint_paths([FIXTURES / "case_workload_spec_bad.py"])
    assert sorted(f.rule for f in bad.findings) == [
        "schema-twin-drift", "schema-twin-drift",
    ]
    messages = " ".join(f.message for f in bad.findings)
    assert "'shared_mem_per_cta'" in messages
    assert "'priority'" in messages
    assert all("workload-spec" in f.message for f in bad.findings)

    clean = drift_lint_paths([FIXTURES / "case_workload_spec_clean.py"])
    assert clean.findings == []


def test_real_workload_spec_surface_is_in_sync(tmp_path):
    dest = tmp_path / "spec.py"
    dest.write_text(
        (SRC / "workloads/spec.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    result = drift_lint(tmp_path)
    assert result.findings == []
    assert "workload-spec" in result.schemas


def test_workload_field_deletion_demands_a_version_bump(tmp_path):
    dest = tmp_path / "spec.py"
    dest.write_text(
        (SRC / "workloads/spec.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, [], schemas=drift_lint(tmp_path).schemas)
    assert drift_lint(tmp_path, baseline).findings == []

    # Drop "description" from both twins: only the fingerprint knows.
    mutate(dest, '        "description": spec.description,\n', "")
    mutate(dest, '"name", "description", "num_ctas"', '"name", "num_ctas"')
    mutate(dest, 'description = top.get("description", "")',
           'description = ""')
    drifted = drift_lint(tmp_path, baseline)
    assert [f.rule for f in drifted.findings] == ["schema-version-unbumped"]
    assert "workload-spec" in drifted.findings[0].message
    assert "WORKLOAD_SPEC_VERSION" in drifted.findings[0].message

    mutate(dest, "WORKLOAD_SPEC_VERSION = 1", "WORKLOAD_SPEC_VERSION = 2")
    assert drift_lint(tmp_path, baseline).findings == []


def drift_lint_paths(paths):
    return run_lint(
        paths=paths, root=FIXTURES, pass_names=["protocol-drift"],
    )


# ---------------------------------------------------------------------------
# CLI: --sarif and --changed
# ---------------------------------------------------------------------------
def test_sarif_report_is_written(tmp_path, capsys):
    from repro.lint.cli import main as lint_main

    out = tmp_path / "lint.sarif"
    bad = str(FIXTURES / "case_thread_safety_bad.py")
    assert lint_main([bad, "--sarif", str(out)]) == 1
    capsys.readouterr()

    sarif = json.loads(out.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"unguarded-attribute", "schema-twin-drift"} <= rule_ids
    results = run["results"]
    assert len(results) == 10
    assert all(r["partialFingerprints"]["reproLint/v1"] for r in results)
    locations = {
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in results
    }
    assert locations == {"tests/lint_fixtures/case_thread_safety_bad.py"}


def test_changed_is_mutually_exclusive_with_paths(capsys):
    from repro.lint.cli import main as lint_main

    assert lint_main(["somefile.py", "--changed"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_changed_with_no_changes_short_circuits(monkeypatch, capsys):
    from repro.lint import cli

    monkeypatch.setattr(cli, "changed_paths", lambda root, ref=None: [])
    assert cli.main(["--changed"]) == 0
    assert "nothing to lint" in capsys.readouterr().out


def test_changed_lints_only_the_returned_files(monkeypatch, capsys, tmp_path):
    from repro.lint import cli

    bad = tmp_path / "clocky.py"
    bad.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    monkeypatch.setattr(cli, "changed_paths", lambda root, ref=None: [bad])
    assert cli.main(["--changed", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["wall-clock"]
