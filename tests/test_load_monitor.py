"""Unit tests for the Load Monitor and its selection protocol."""

import pytest

from repro.core.load_monitor import LoadMonitor, MonitorState
from repro.gpu.isa import hashed_pc


def make_lm(threshold=0.20, min_accesses=4):
    return LoadMonitor(hit_ratio_threshold=threshold, min_accesses=min_accesses)


def feed(lm, pc, hits, misses):
    for _ in range(hits):
        lm.record_access(pc, True)
    for _ in range(misses):
        lm.record_access(pc, False)


class TestTableStructure:
    def test_paper_geometry(self):
        """32 entries indexed by 5-bit hashed PC (paper Section 4.1)."""
        lm = make_lm()
        assert len(lm.entries) == 32

    def test_entry_count_must_match_index_width(self):
        with pytest.raises(ValueError):
            LoadMonitor(num_entries=16, hpc_bits=5)

    def test_first_access_stores_full_pc(self):
        lm = make_lm()
        lm.record_access(0x1234, True)
        assert lm.entries[hashed_pc(0x1234)].pc == 0x1234

    def test_storage_bits_matches_paper(self):
        """Section 4.2: 32 entries x (2 bits + 3 x 32 bits) = 392 bytes."""
        lm = make_lm()
        assert lm.storage_bits() / 8 == pytest.approx(392, abs=8)


class TestSelectionProtocol:
    def test_same_set_two_windows_selects(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        feed(lm, 0x100, hits=8, misses=2)
        state = lm.close_window()
        assert state is MonitorState.SELECTED
        assert lm.is_selected(hashed_pc(0x100))

    def test_no_locality_two_windows_disables(self):
        """Paper: no high-locality load within the first two windows
        means the application is not cache sensitive."""
        lm = make_lm()
        feed(lm, 0x100, hits=0, misses=20)
        lm.close_window()
        feed(lm, 0x100, hits=0, misses=20)
        assert lm.close_window() is MonitorState.DISABLED

    def test_subset_match_does_not_select(self):
        """Paper: if only a subset of the first window's high-locality
        loads repeats, nothing is tagged and monitoring continues."""
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        feed(lm, 0x204, hits=8, misses=2)
        lm.close_window()
        feed(lm, 0x100, hits=8, misses=2)
        feed(lm, 0x204, hits=0, misses=10)
        state = lm.close_window()
        assert state is MonitorState.MONITORING

    def test_monitoring_continues_until_match(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)  # window 1: {0x100}
        lm.close_window()
        feed(lm, 0x204, hits=8, misses=2)  # window 2: {0x204} - mismatch
        assert lm.close_window() is MonitorState.MONITORING
        feed(lm, 0x204, hits=8, misses=2)  # window 3: {0x204} - match
        assert lm.close_window() is MonitorState.SELECTED
        assert lm.is_selected(hashed_pc(0x204))
        assert not lm.is_selected(hashed_pc(0x100))

    def test_threshold_boundary(self):
        lm = make_lm(threshold=0.20)
        feed(lm, 0x100, hits=2, misses=8)  # exactly 20%
        lm.close_window()
        feed(lm, 0x100, hits=2, misses=8)
        assert lm.close_window() is MonitorState.SELECTED

    def test_below_threshold_not_high_locality(self):
        lm = make_lm(threshold=0.20)
        feed(lm, 0x100, hits=1, misses=9)  # 10%
        lm.close_window()
        feed(lm, 0x100, hits=1, misses=9)
        assert lm.close_window() is MonitorState.DISABLED

    def test_min_accesses_filters_rare_loads(self):
        lm = make_lm(min_accesses=8)
        feed(lm, 0x100, hits=3, misses=0)  # only 3 accesses
        lm.close_window()
        feed(lm, 0x100, hits=3, misses=0)
        assert lm.close_window() is MonitorState.DISABLED

    def test_counters_reset_each_window(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        entry = lm.entries[hashed_pc(0x100)]
        assert entry.accesses == 0

    def test_recording_stops_after_selection(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        lm.record_access(0x100, True)
        assert lm.entries[hashed_pc(0x100)].accesses == 0

    def test_discard_window_keeps_protocol_position(self):
        """Warmup windows are dropped without advancing the two-window
        protocol."""
        lm = make_lm()
        feed(lm, 0x100, hits=0, misses=20)
        lm.discard_window()
        assert lm.windows_elapsed == 0
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        feed(lm, 0x100, hits=8, misses=2)
        assert lm.close_window() is MonitorState.SELECTED


class TestValidBits:
    def test_valid_shifts_across_windows(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        entry = lm.entries[hashed_pc(0x100)]
        assert entry.valid == 0b01
        feed(lm, 0x100, hits=8, misses=2)
        lm.close_window()
        assert entry.valid == 0b11

    def test_valid_drops_when_locality_lost(self):
        lm = make_lm()
        feed(lm, 0x100, hits=8, misses=2)
        feed(lm, 0x204, hits=8, misses=2)
        lm.close_window()
        feed(lm, 0x100, hits=0, misses=10)
        feed(lm, 0x204, hits=8, misses=2)
        lm.close_window()
        assert lm.entries[hashed_pc(0x100)].valid == 0b10
