"""Tests for the declarative metrics core (``repro.metrics``).

Three layers: the registry's generated ``__slots__`` storage classes,
the windowed timeseries containers, and the end-to-end path a recorded
series travels — simulator → snapshot → wire protocol → result cache —
which must be bit-identical at every hop. Plus the overhead contract:
with timeseries off, results are fingerprint-identical to a recording
run, so recording can never perturb simulation semantics.
"""

from __future__ import annotations

import dataclasses
import pickle
import sys
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.core.linebacker import linebacker_factory
from repro.gpu import run_kernel
from repro.gpu.stats import SM_STATS, SMStats
from repro.metrics import (
    DEFAULT_WINDOW_CAPACITY,
    Metric,
    MetricSet,
    TIMESERIES_VERSION,
    WindowRecorder,
    WindowSeries,
    fingerprint_metric_names,
    metric_set,
    metric_sets,
)
from repro.runner.cache import MISS, ResultCache
from repro.runner.wire import decode_result, encode_result
from repro.workloads.suite import kernel_for

sys.path.insert(0, str(Path(__file__).parent))
from golden import result_fingerprint  # noqa: E402


# ---------------------------------------------------------------------------
# Registry: declarations generate the storage classes.
# ---------------------------------------------------------------------------
class TestMetricSet:
    def test_generated_class_has_defaults_and_kwargs_init(self):
        ms = MetricSet(
            "TmGenerated", owner="tests",
            metrics=(Metric("alpha"), Metric("beta")),
        )
        cls = ms.build()
        obj = cls(alpha=3)
        assert obj.alpha == 3
        assert obj.beta == 0

    def test_generated_class_is_slotted(self):
        cls = MetricSet(
            "TmSlotted", owner="tests", metrics=(Metric("alpha"),)
        ).build()
        obj = cls()
        with pytest.raises(AttributeError):
            obj.typo_field = 1

    def test_subclass_keeps_dataclass_machinery(self):
        """The production idiom: ``class X(SET.build()): __slots__ = ()``
        must pickle by reference and support ``dataclasses.replace``."""
        s = SMStats(instructions=500, cycles=250)
        assert dataclasses.is_dataclass(s)
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert type(clone) is SMStats
        bumped = dataclasses.replace(s, instructions=501)
        assert bumped.instructions == 501
        assert bumped.cycles == 250
        assert repr(s).startswith("SMStats(")

    def test_counter_names_exclude_gauges(self):
        assert "cycles" not in SM_STATS.counter_names()
        assert "instructions" in SM_STATS.counter_names()
        assert "cycles" in SM_STATS.names()

    def test_fingerprint_names(self):
        assert set(SM_STATS.fingerprint_names()) >= {
            "instructions", "cycles", "victim_hits"
        }
        assert "victim_hits" in fingerprint_metric_names()

    def test_registry_lookup(self):
        assert metric_set("SMStats") is SM_STATS
        assert SM_STATS in metric_sets()

    def test_identical_redeclaration_is_a_noop(self):
        spec = dict(
            class_name="TmRedeclared", owner="tests",
            metrics=(Metric("alpha"),),
        )
        MetricSet(**spec)
        MetricSet(**spec)  # same data: no conflict

    def test_conflicting_redeclaration_raises(self):
        MetricSet("TmConflict", owner="tests", metrics=(Metric("alpha"),))
        with pytest.raises(ValueError, match="conflicting"):
            MetricSet("TmConflict", owner="tests", metrics=(Metric("beta"),))

    @pytest.mark.parametrize(
        "metric,match",
        [
            (Metric("not an ident"), "not a valid attribute"),
            (Metric("class"), "not a valid attribute"),
            (Metric("_hidden"), "underscore"),
            (Metric("alpha", kind="histogram"), "unknown kind"),
        ],
    )
    def test_bad_metric_declarations_raise(self, metric, match):
        with pytest.raises(ValueError, match=match):
            MetricSet("TmBad", owner="tests", metrics=(metric,))

    def test_duplicate_metric_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            MetricSet(
                "TmDup", owner="tests",
                metrics=(Metric("alpha"), Metric("alpha")),
            )


# ---------------------------------------------------------------------------
# WindowSeries: the bounded ring and its payload form.
# ---------------------------------------------------------------------------
class TestWindowSeries:
    def test_ring_sheds_oldest_and_counts_dropped(self):
        series = WindowSeries(100, capacity=3)
        for i in range(5):
            series.append({"cycle": (i + 1) * 100})
        assert len(series) == 3
        assert [row["cycle"] for row in series] == [300, 400, 500]
        assert series.dropped == 2

    def test_payload_round_trip(self):
        series = WindowSeries(2000, capacity=8)
        series.append({"cycle": 2000, "ipc": 1.5, "vp_hits": [1, 2]})
        clone = WindowSeries.from_payload(series.to_payload())
        assert clone == series
        assert clone.version == TIMESERIES_VERSION
        assert list(clone)[0]["vp_hits"] == [1, 2]

    def test_payload_rows_are_copies(self):
        series = WindowSeries(100)
        series.append({"cycle": 100})
        payload = series.to_payload()
        payload["rows"][0]["cycle"] = 999
        assert list(series)[0]["cycle"] == 100

    def test_eq_and_unhashable(self):
        a, b = WindowSeries(100), WindowSeries(100)
        assert a == b
        b.append({"cycle": 100})
        assert a != b
        assert a != "not a series"
        with pytest.raises(TypeError):
            hash(a)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSeries(0)
        with pytest.raises(ValueError):
            WindowSeries(100, capacity=0)

    def test_default_capacity(self):
        assert WindowSeries(100).capacity == DEFAULT_WINDOW_CAPACITY


class TestWindowRecorder:
    def test_deltas_fold_cumulative_counters(self):
        rec = WindowRecorder(100, ("instructions", "loads"))
        stats = SMStats(instructions=150, loads=10)
        rec.capture(100, stats, active=4, inactive=2)
        stats.instructions, stats.loads = 390, 15
        rec.capture(200, stats, active=3, inactive=3)
        rows = list(rec.series)
        assert [r["instructions"] for r in rows] == [150, 240]
        assert [r["loads"] for r in rows] == [10, 5]
        assert [r["ipc"] for r in rows] == [1.5, 2.4]
        assert rows[1]["active"] == 3 and rows[1]["inactive"] == 3

    def test_extra_keys_merge_into_the_row(self):
        rec = WindowRecorder(100, ())
        rec.capture(100, SMStats(), 0, 0, extra={"vps": 7, "state": "x"})
        row = list(rec.series)[0]
        assert row["vps"] == 7 and row["state"] == "x"
        assert row["ipc"] == 0.0  # no instructions counter folded


# ---------------------------------------------------------------------------
# End to end: simulator -> snapshot -> wire -> cache, bit-identical.
# ---------------------------------------------------------------------------
def _tiny_run(timeseries: bool):
    config = scaled_config(num_sms=2)
    return run_kernel(
        config,
        kernel_for("GE", scale=0.1),
        extension_factory=linebacker_factory(config.linebacker),
        timeseries=timeseries,
    )


class TestTimeseriesEndToEnd:
    @pytest.fixture(scope="class")
    def recorded(self):
        return _tiny_run(timeseries=True)

    def test_rows_carry_engine_and_extension_state(self, recorded):
        series = recorded.timeseries
        assert len(series) == 2  # one per SM
        rows = list(series[0])
        assert rows, "expected at least one closed window"
        window = series[0].window_cycles
        assert rows[0]["cycle"] == window
        for row in rows:
            assert row["cycle"] % window == 0
            # engine counters + occupancy + extension contributions
            for key in ("ipc", "instructions", "active", "inactive",
                        "vps", "state", "phase", "vp_hits"):
                assert key in row

    def test_off_by_default(self):
        assert _tiny_run(timeseries=False).timeseries is None

    def test_recording_is_fingerprint_neutral(self, recorded):
        """The overhead contract: recording must not perturb the sim."""
        plain = _tiny_run(timeseries=False)
        assert result_fingerprint(plain) == result_fingerprint(recorded)

    def test_wire_and_cache_round_trip_bit_identical(self, recorded, tmp_path):
        payload_before = [s.to_payload() for s in recorded.timeseries]

        wired = decode_result(encode_result("k" * 8, recorded, 0.5)).payload
        assert [s.to_payload() for s in wired.timeseries] == payload_before

        cache = ResultCache(tmp_path / "cache")
        cache.put("deadbeef", wired)
        restored = cache.get("deadbeef")
        assert restored is not MISS
        assert [s.to_payload() for s in restored.timeseries] == payload_before
        assert restored.timeseries[0] == recorded.timeseries[0]
