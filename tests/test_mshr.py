"""Unit tests for the MSHR file (repro.memory.mshr)."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_new_miss_creates_entry(self):
        mshr = MSHRFile(4)
        assert mshr.allocate(10, "w0") is True
        assert mshr.lookup(10)
        assert mshr.occupancy == 1

    def test_second_miss_merges(self):
        mshr = MSHRFile(4)
        mshr.allocate(10, "w0")
        assert mshr.allocate(10, "w1") is False
        assert mshr.occupancy == 1
        assert mshr.merged_requests == 1

    def test_full_file_rejects_new_line(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, "a")
        mshr.allocate(2, "b")
        assert not mshr.can_allocate(3)
        with pytest.raises(RuntimeError):
            mshr.allocate(3, "c")

    def test_full_file_still_merges_inflight_line(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, "a")
        assert mshr.can_allocate(1)
        assert mshr.allocate(1, "b") is False


class TestRelease:
    def test_release_returns_all_waiters_in_order(self):
        mshr = MSHRFile(4)
        mshr.allocate(5, "first")
        mshr.allocate(5, "second")
        mshr.allocate(5, "third")
        assert mshr.release(5) == ["first", "second", "third"]
        assert mshr.occupancy == 0

    def test_release_unknown_line_is_empty(self):
        mshr = MSHRFile(4)
        assert mshr.release(99) == []

    def test_capacity_reusable_after_release(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, "a")
        mshr.release(1)
        assert mshr.allocate(2, "b") is True

    def test_paper_l1_mshr_count(self):
        """Table 1: 64 MSHRs per SM L1."""
        mshr = MSHRFile(64)
        for i in range(64):
            mshr.allocate(i, f"w{i}")
        assert not mshr.can_allocate(64)
        assert mshr.occupancy == 64
