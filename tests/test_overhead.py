"""Tests for the Section 4.2 storage-overhead inventory."""

import pytest

from repro.analysis.overhead import storage_overhead
from repro.config import GPUConfig, LinebackerConfig


class TestPaperNumbers:
    """The paper's per-structure numbers, Section 4.2."""

    def test_hpc_fields_240_bytes(self):
        assert storage_overhead().hpc_fields == pytest.approx(240)

    def test_load_monitor_392_bytes(self):
        assert storage_overhead().load_monitor == pytest.approx(392)

    def test_vtt_4608_bytes(self):
        assert storage_overhead().vtt == pytest.approx(4608)

    def test_buffer_792_bytes(self):
        assert storage_overhead().buffer == pytest.approx(792)

    def test_total_close_to_paper_5_88_kb(self):
        """Paper total: 5.88 KB per SM. Our full inventory lands at
        6.08 KB; the paper's headline sums the four big structures
        (240 + 392 + 4608 + 792 = 5.89 KB) and appears to fold the
        Per-CTA Info table into the rounding."""
        total = storage_overhead().total_kb
        assert total == pytest.approx(5.88, abs=0.25)

    def test_scales_with_l1_size(self):
        big = GPUConfig().with_l1_size(128 * 1024)
        assert storage_overhead(big).hpc_fields > storage_overhead().hpc_fields

    def test_scales_with_partitions(self):
        from dataclasses import replace

        lb = replace(LinebackerConfig(), max_vtt_partitions=4)
        assert storage_overhead(lb=lb).vtt == pytest.approx(4608 / 2)
