"""Tests for the energy model (Figure 18 machinery)."""

import pytest

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import alu, load
from repro.gpu.trace import from_instruction_lists
from repro.power.energy import EnergyModel, estimate_energy, relative_energy


def small_run(insts=None):
    cfg = scaled_config(num_sms=1, window_cycles=500)
    insts = insts or [alu() for _ in range(20)]
    kernel = from_instruction_lists("k", [[insts]], regs_per_thread=8)
    return run_kernel(cfg, kernel)


class TestEnergyModel:
    def test_paper_table3_event_energies(self):
        m = EnergyModel()
        assert m.cta_manager_access == pytest.approx(1.94e-12)
        assert m.hpc_access == pytest.approx(0.09e-12)
        assert m.lm_access == pytest.approx(0.32e-12)
        assert m.vtt_access == pytest.approx(2.05e-12)

    def test_total_is_sum_of_components(self):
        result = small_run()
        breakdown = estimate_energy(result)
        total = (
            breakdown.static + breakdown.alu + breakdown.register_file
            + breakdown.l1 + breakdown.l2 + breakdown.dram + breakdown.linebacker
        )
        assert breakdown.total == pytest.approx(total)

    def test_longer_run_costs_more_static_energy(self):
        short = small_run([alu() for _ in range(5)])
        long = small_run([alu() for _ in range(500)])
        assert estimate_energy(long).static > estimate_energy(short).static

    def test_memory_traffic_costs_dram_energy(self):
        no_mem = small_run([alu()])
        with_mem = small_run([load(0x100, [i]) for i in range(20)])
        assert estimate_energy(with_mem).dram > estimate_energy(no_mem).dram

    def test_relative_energy_of_self_is_one(self):
        result = small_run()
        assert relative_energy(result, result) == pytest.approx(1.0)

    def test_linebacker_component_zero_without_extension(self):
        result = small_run()
        assert estimate_energy(result).linebacker == 0.0

    def test_linebacker_structures_add_energy(self):
        from repro.core.linebacker import linebacker_factory
        from repro.workloads.suite import kernel_for

        cfg = scaled_config(num_sms=1, window_cycles=500)
        kernel = kernel_for("S2", scale=0.05)
        result = run_kernel(
            cfg, kernel, extension_factory=linebacker_factory(cfg.linebacker)
        )
        assert estimate_energy(result).linebacker > 0.0
