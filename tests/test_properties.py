"""Property-based tests (hypothesis) on core data structures.

These pin the invariants the rest of the system leans on: cache
contents are always a subset of what was inserted, LRU never exceeds
capacity, MSHR merge/release conservation, victim-tag register mapping
stays inside the configured range and is injective, backup/restore is
a lossless round trip, and the hashed PC always fits its width.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.core.backup import RegisterBackupEngine
from repro.core.victim_tag_table import VictimTagTable
from repro.gpu.isa import hashed_pc
from repro.gpu.register_file import RegisterFile
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.memory.subsystem import MemorySubsystem
from repro.workloads.generator import LoadSpec, Pattern, Scope, build_kernel

sys.path.insert(0, str(Path(__file__).parent))
from workload_helpers import lines_of, make_app  # noqa: E402

addresses = st.integers(min_value=0, max_value=1 << 20)


class TestCacheProperties:
    @given(st.lists(addresses, max_size=200))
    def test_contents_subset_of_fills(self, addrs):
        cache = SetAssociativeCache(4 * 1024, 4)
        for a in addrs:
            cache.fill(a)
        assert set(cache.resident_lines()) <= set(addrs)

    @given(st.lists(addresses, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = SetAssociativeCache(2 * 1024, 2)
        capacity = cache.num_sets * cache.assoc
        for a in addrs:
            cache.fill(a)
            assert cache.occupancy() <= capacity

    @given(st.lists(addresses, min_size=1, max_size=200))
    def test_most_recent_fill_always_resident(self, addrs):
        cache = SetAssociativeCache(2 * 1024, 2)
        for a in addrs:
            cache.fill(a)
        assert cache.probe(addrs[-1]) is not None

    @given(st.lists(addresses, max_size=200))
    def test_hits_plus_misses_equals_lookups(self, addrs):
        cache = SetAssociativeCache(2 * 1024, 2)
        for i, a in enumerate(addrs):
            cache.lookup(a)
            if i % 2:
                cache.fill(a)
        assert cache.stats.hits + cache.stats.misses == len(addrs)

    @given(st.lists(addresses, max_size=200))
    def test_cold_plus_capacity_equals_misses(self, addrs):
        cache = SetAssociativeCache(1 * 1024, 2)
        for i, a in enumerate(addrs):
            cache.lookup(a)
            cache.fill(a)
        s = cache.stats
        assert s.cold_misses + s.capacity_conflict_misses == s.misses

    @given(st.lists(addresses, max_size=100))
    def test_eviction_conservation(self, fills):
        """Every fill that created a new entry either remains resident
        or was evicted through the hook (lines can cycle repeatedly)."""
        evicted = []
        cache = SetAssociativeCache(
            1 * 1024, 2, eviction_hook=lambda a, l: evicted.append(a)
        )
        new_fills = 0
        for a in fills:
            if cache.probe(a) is None:
                new_fills += 1
            cache.fill(a)
        assert new_fills == cache.occupancy() + len(evicted)
        assert set(evicted) <= set(fills)


class TestMSHRProperties:
    @given(st.lists(st.tuples(addresses, st.integers(0, 100)), max_size=150))
    def test_waiter_conservation(self, ops):
        mshr = MSHRFile(16)
        registered = {}
        for addr, waiter in ops:
            if mshr.can_allocate(addr):
                mshr.allocate(addr, waiter)
                registered.setdefault(addr, []).append(waiter)
        for addr, waiters in registered.items():
            assert mshr.release(addr) == waiters
        assert mshr.occupancy == 0

    @given(st.lists(addresses, max_size=150))
    def test_occupancy_bounded(self, addrs):
        mshr = MSHRFile(8)
        for a in addrs:
            if mshr.can_allocate(a):
                mshr.allocate(a, "w")
            assert mshr.occupancy <= 8


class TestVTTProperties:
    @given(st.lists(addresses, max_size=300))
    @settings(max_examples=50)
    def test_register_numbers_stay_in_range(self, addrs):
        vtt = VictimTagTable(num_sets=48, ways=4, max_partitions=8)
        for vp in vtt.partitions:
            vtt.activate(vp.index)
        for a in addrs:
            rn = vtt.insert(a)
            assert rn is not None
            assert 512 <= rn < 2048

    @given(st.lists(addresses, max_size=300))
    @settings(max_examples=50)
    def test_lookup_returns_register_of_inserted_line(self, addrs):
        vtt = VictimTagTable(num_sets=16, ways=2, max_partitions=2, total_registers=2048)
        for vp in vtt.partitions:
            vtt.activate(vp.index)
        mapping = {}
        for a in addrs:
            rn = vtt.insert(a)
            mapping[a] = rn
        # Whatever remains resident must map to the register it was
        # assigned at insertion (unless reassigned by a later insert).
        for a in set(addrs):
            hit = vtt.lookup(a)
            if hit is not None:
                rn, _latency = hit
                assert rn == mapping[a]

    @given(st.lists(addresses, max_size=200))
    @settings(max_examples=50)
    def test_no_two_valid_entries_share_a_register(self, addrs):
        vtt = VictimTagTable(num_sets=8, ways=2, max_partitions=2, total_registers=2048)
        for vp in vtt.partitions:
            vtt.activate(vp.index)
        for a in addrs:
            vtt.insert(a)
        rns = [
            vp.register_number(s, w)
            for vp in vtt.active_partitions()
            for s, ways in enumerate(vp.entries)
            for w, e in enumerate(ways)
            if e.valid
        ]
        assert len(rns) == len(set(rns))

    @given(st.lists(addresses, max_size=200), addresses)
    @settings(max_examples=50)
    def test_invalidate_then_lookup_misses(self, addrs, target):
        vtt = VictimTagTable(num_sets=16, ways=4, max_partitions=4)
        for vp in vtt.partitions:
            vtt.activate(vp.index)
        for a in addrs:
            vtt.insert(a)
        vtt.insert(target)
        vtt.invalidate(target)
        assert vtt.lookup(target) is None


class TestBackupProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_backup_restore_roundtrip_lossless(self, values):
        memory = MemorySubsystem(GPUConfig(num_sms=1))
        engine = RegisterBackupEngine(memory)
        rf = RegisterFile(256 * 1024)
        regs = rf.allocate(len(values), owner=0)
        for r, v in zip(regs, values):
            rf.write(r, v)
        events = []
        record = engine.backup(rf, regs, 0, lambda c: None, lambda t, cb: events.append((t, cb)))
        for t, cb in sorted(events, key=lambda e: e[0]):
            cb(t)
        events.clear()
        rf.free(regs)
        new_regs = rf.allocate(len(values), owner=1)
        engine.restore(
            record, rf, new_regs, 0,
            lambda c: None, lambda t, cb: events.append((t, cb)),
        )
        for t, cb in sorted(events, key=lambda e: e[0]):
            cb(t)
        assert [rf.peek(r) for r in new_regs] == values


class TestHashedPCProperties:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1), st.integers(1, 16))
    def test_always_fits_width(self, pc, bits):
        assert 0 <= hashed_pc(pc, bits) < (1 << bits)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_stable(self, pc):
        assert hashed_pc(pc) == hashed_pc(pc)


class TestRegisterFileProperties:
    @given(st.lists(st.integers(1, 64), max_size=20))
    @settings(max_examples=50)
    def test_allocations_never_overlap(self, sizes):
        rf = RegisterFile(64 * 1024)
        owned = {}
        for i, n in enumerate(sizes):
            rng = rf.allocate(n, owner=i)
            if rng is None:
                continue
            for r in rng:
                assert r not in owned, "overlapping allocation"
                owned[r] = i
        for r, o in owned.items():
            assert rf.owner_of(r) == o

    @given(st.lists(st.integers(1, 32), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_free_then_alloc_reuses_space(self, sizes):
        rf = RegisterFile(16 * 1024)
        ranges = [rf.allocate(n, owner=i) for i, n in enumerate(sizes)]
        for rng in ranges:
            if rng is not None:
                rf.free(rng)
        assert rf.allocated_count() == 0
        total = sum(sizes)
        if total <= rf.num_registers:
            assert rf.allocate(total, owner=99) is not None


class TestGeneratorProperties:
    """Workload-generator invariants the classifier and fuzzer gates
    lean on: streams never revisit, reuse stays inside its declared
    working set, per-entity scopes never alias, and generation is a
    pure function of the spec."""

    @given(st.integers(1, 60), st.integers(1, 3), st.integers(2, 4),
           st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_stream_never_revisits_a_line(self, iters, weight, warps, ctas):
        spec = make_app(
            LoadSpec(0x100, Pattern.STREAM, 0, weight=weight),
            iters=iters, warps=warps, ctas=ctas,
        )
        kernel = build_kernel(spec)
        seen = set()
        for cta in range(ctas):
            for warp in range(warps):
                for line in lines_of(kernel, cta, warp):
                    assert line not in seen, "stream revisited a line"
                    seen.add(line)

    @given(st.integers(1, 96), st.integers(1, 7), st.integers(1, 4),
           st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_reuse_stays_within_working_set(self, ws, stride, burst, iters):
        spec = make_app(
            LoadSpec(0x100, Pattern.REUSE, ws, stride=stride,
                     reuse_burst=burst),
            iters=iters, warps=2, ctas=2,
        )
        kernel = build_kernel(spec)
        lines = set(lines_of(kernel, 0, 0)) | set(lines_of(kernel, 1, 1))
        assert len(lines) <= 2 * ws  # GLOBAL scope: one region, phase-shifted

        scoped = make_app(
            LoadSpec(0x100, Pattern.REUSE, ws, Scope.WARP, stride=stride,
                     reuse_burst=burst),
            iters=iters, warps=2, ctas=2,
        )
        k2 = build_kernel(scoped)
        for cta in range(2):
            for warp in range(2):
                assert len(set(lines_of(k2, cta, warp))) <= ws

    @given(st.integers(1, 32), st.integers(1, 40),
           st.sampled_from([Pattern.REUSE, Pattern.DIVERGENT]))
    @settings(max_examples=40, deadline=None)
    def test_warp_and_cta_scopes_never_alias(self, ws, iters, pattern):
        spec = make_app(
            LoadSpec(0x100, pattern, ws, Scope.WARP),
            iters=iters, warps=2, ctas=2,
        )
        kernel = build_kernel(spec)
        per_warp = [
            set(lines_of(kernel, cta, warp))
            for cta in range(2) for warp in range(2)
        ]
        for i in range(len(per_warp)):
            for j in range(i + 1, len(per_warp)):
                assert not (per_warp[i] & per_warp[j]), "warp regions alias"

        cta_spec = make_app(
            LoadSpec(0x100, pattern, ws, Scope.CTA),
            iters=iters, warps=2, ctas=3,
        )
        k2 = build_kernel(cta_spec)
        per_cta = [
            set(lines_of(k2, cta, 0)) | set(lines_of(k2, cta, 1))
            for cta in range(3)
        ]
        for i in range(len(per_cta)):
            for j in range(i + 1, len(per_cta)):
                assert not (per_cta[i] & per_cta[j]), "CTA regions alias"

    @given(st.integers(0, 2), st.integers(0, 1), st.integers(1, 30),
           st.sampled_from([Pattern.STREAM, Pattern.REUSE, Pattern.DIVERGENT]))
    @settings(max_examples=40, deadline=None)
    def test_trace_generation_is_deterministic(self, cta, warp, iters, pattern):
        ws = 0 if pattern is Pattern.STREAM else 16
        spec = make_app(
            LoadSpec(0x100, pattern, ws, lines_per_access=2),
            iters=iters, warps=2, ctas=3,
        )
        k1, k2 = build_kernel(spec), build_kernel(spec)
        assert list(k1.materialize(cta, warp)) == list(k2.materialize(cta, warp))
