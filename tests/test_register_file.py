"""Unit tests for the banked register file."""

import pytest

from repro.gpu.register_file import RegisterFile


def make_rf(size=256 * 1024, banks=16, ports=1):
    return RegisterFile(size, num_banks=banks, ports_per_bank=ports)


class TestAllocation:
    def test_paper_capacity(self):
        """Table 1: 256 KB register file = 2048 warp registers."""
        assert make_rf().num_registers == 2048

    def test_contiguous_allocation(self):
        rf = make_rf()
        rng = rf.allocate(128, owner=0)
        assert rng == range(0, 128)
        assert all(rf.owner_of(r) == 0 for r in rng)

    def test_first_fit_reuses_freed_hole(self):
        rf = make_rf()
        a = rf.allocate(100, owner=0)
        rf.allocate(100, owner=1)
        rf.free(a)
        c = rf.allocate(50, owner=2)
        assert c.start == 0

    def test_allocation_fails_when_fragmented(self):
        rf = RegisterFile(4 * 128, num_banks=2)
        rf.allocate(1, owner=0)      # reg 0
        b = rf.allocate(1, owner=1)  # reg 1
        rf.allocate(1, owner=2)      # reg 2
        rf.free(b)
        # Only regs 1 and 3 are free; no contiguous run of 2.
        assert rf.allocate(2, owner=3) is None

    def test_unused_accounting(self):
        rf = make_rf()
        rf.allocate(1024, owner=0)
        assert rf.unused_registers() == 1024
        assert rf.unused_bytes() == 1024 * 128

    def test_free_clears_values(self):
        rf = make_rf()
        rng = rf.allocate(4, owner=0)
        rf.write(rng.start, 42)
        rf.free(rng)
        assert rf.peek(rng.start) is None

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            RegisterFile(100)


class TestDataAccess:
    def test_write_read_roundtrip(self):
        rf = make_rf()
        rf.write(10, 1234, cycle=0)
        assert rf.read(10, cycle=1) == 1234

    def test_peek_does_not_count(self):
        rf = make_rf()
        rf.write(3, 9)
        reads_before = rf.stats.reads
        rf.peek(3)
        assert rf.stats.reads == reads_before


class TestBankConflicts:
    def test_same_bank_same_cycle_conflicts(self):
        rf = make_rf(banks=16, ports=1)
        rf.read(0, cycle=5)
        rf.read(16, cycle=5)  # same bank (0)
        assert rf.stats.bank_conflicts == 1

    def test_different_banks_no_conflict(self):
        rf = make_rf(banks=16)
        rf.read(0, cycle=5)
        rf.read(1, cycle=5)
        assert rf.stats.bank_conflicts == 0

    def test_same_bank_different_cycle_no_conflict(self):
        rf = make_rf(banks=16)
        rf.read(0, cycle=5)
        rf.read(16, cycle=6)
        assert rf.stats.bank_conflicts == 0

    def test_multiport_banks_absorb_accesses(self):
        rf = make_rf(banks=16, ports=2)
        rf.read(0, cycle=1)
        rf.read(16, cycle=1)
        assert rf.stats.bank_conflicts == 0
        rf.read(32, cycle=1)
        assert rf.stats.bank_conflicts == 1

    def test_operand_traffic_spreads_across_banks(self):
        rf = make_rf(banks=16)
        conflicts = rf.account_operand_traffic(3, base_reg=0, cycle=9)
        assert conflicts == 0
        assert rf.stats.reads == 3

    def test_operand_traffic_conflicts_with_victim_reads(self):
        """Victim cache reads share banks with operands — the source
        of Linebacker's extra conflicts (paper Figure 16)."""
        rf = make_rf(banks=16)
        rf.read(512, cycle=3)  # victim line in bank 0
        conflicts = rf.account_operand_traffic(1, base_reg=0, cycle=3)
        assert conflicts == 1
