"""Tests for the SimulationResult public API and example scripts'
syntactic health."""

import pathlib
import py_compile

import pytest

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import alu, load
from repro.gpu.trace import from_instruction_lists

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.fixture(scope="module")
def result():
    cfg = scaled_config(num_sms=2, window_cycles=500)
    per_warp = [
        [[load(0x100, [w * 3 + i]) for i in range(4)] + [alu()] for w in range(2)]
        for _ in range(4)
    ]
    kernel = from_instruction_lists("api", per_warp, regs_per_thread=8)
    return run_kernel(cfg, kernel)


class TestSimulationResult:
    def test_instruction_count(self, result):
        assert result.instructions == 4 * 2 * 6  # 4 loads + alu + exit

    def test_ipc_positive(self, result):
        assert result.ipc > 0

    def test_breakdown_fractions(self, result):
        breakdown = result.request_breakdown
        assert set(breakdown) == {"hit", "miss", "bypass", "reg_hit"}
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_miss_classification_partitions(self, result):
        total = result.cold_miss_ratio + result.capacity_conflict_miss_ratio
        assert 0.0 <= total <= 1.0

    def test_traffic_accounted(self, result):
        assert result.traffic.demand_read_lines > 0
        assert result.traffic.total_lines >= result.traffic.demand_read_lines

    def test_per_sm_stats_align_with_num_sms(self, result):
        assert len(result.sm_stats) == 2
        assert len(result.l1_stats) == 2
        assert len(result.rf_stats) == 2


class TestExamples:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3
