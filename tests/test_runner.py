"""Tests for the parallel experiment engine (`repro.runner`):
content hashing, the persistent result cache, process-pool execution,
the architecture registry, and corrupted-cache recovery."""

import pickle
from dataclasses import replace

import pytest

from repro.analysis import ExperimentContext
from repro.config import canonical_tokens, scaled_config, stable_hash
from repro.runner import (
    ARCHITECTURES,
    ExperimentRunner,
    JobSpec,
    MISS,
    ResultCache,
    execute_job,
    resolve,
)

CFG = scaled_config(num_sms=1, window_cycles=600)


def make_spec(app="S2", arch="baseline", config=CFG, scale=0.1, **overrides):
    return JobSpec.build(
        app=app, arch=arch, config=config, scale=scale, overrides=overrides
    )


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(tmp_path / "cache"))
    return ExperimentRunner(**kwargs)


class TestStableHash:
    def test_equal_values_hash_equal(self):
        a = make_spec()
        b = make_spec(config=scaled_config(num_sms=1, window_cycles=600))
        assert a.config is not b.config
        assert a.key == b.key

    def test_any_field_variation_changes_hash(self):
        base = make_spec()
        variants = [
            make_spec(app="LI"),
            make_spec(arch="linebacker"),
            make_spec(scale=0.2),
            make_spec(config=replace(CFG, seed=7)),
            make_spec(config=replace(CFG, max_cycles=CFG.max_cycles + 1)),
            make_spec(config=replace(CFG, gpu=CFG.gpu.with_l1_size(16 * 1024))),
            make_spec(
                config=replace(
                    CFG, linebacker=replace(CFG.linebacker, vtt_ways=8)
                )
            ),
            make_spec(track_loads=True),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_hash_ignores_override_order(self):
        a = JobSpec.build("S2", "x", CFG, overrides={"p": 1, "q": 2})
        b = JobSpec.build("S2", "x", CFG, overrides={"q": 2, "p": 1})
        assert a.key == b.key

    def test_canonical_rejects_unencodable(self):
        with pytest.raises(TypeError):
            canonical_tokens(object())

    def test_stable_hash_is_content_not_identity(self):
        assert stable_hash(CFG) == stable_hash(replace(CFG))
        assert stable_hash(CFG) != stable_hash(replace(CFG, seed=CFG.seed + 1))


class TestRegistry:
    def test_all_paper_architectures_registered(self):
        assert set(ARCHITECTURES) >= {
            "baseline",
            "best_swl",
            "linebacker",
            "victim_caching",
            "selective_victim_caching",
            "pcal",
            "cerf",
            "pcal_svc",
            "pcal_cerf",
            "cache_ext",
            "best_swl_cache_ext",
            "lb_cache_ext",
        }

    def test_resolve_unknown_is_helpful(self):
        with pytest.raises(KeyError, match="linebacker"):
            resolve("not_an_arch")

    def test_ctx_run_unknown_arch(self, tmp_path):
        ctx = ExperimentContext(
            config=CFG, scale=0.1, apps=("S2",), runner=make_runner(tmp_path)
        )
        with pytest.raises(KeyError):
            ctx.run("S2", "not_an_arch")

    def test_factories_are_picklable(self):
        from repro.baselines.cerf import PCALCERFFactory, cerf_factory
        from repro.baselines.pcal import pcal_factory
        from repro.core.linebacker import linebacker_factory

        for factory in (
            linebacker_factory(CFG.linebacker, enable_bypass_throttling=True),
            pcal_factory(CFG.linebacker),
            cerf_factory(CFG.linebacker),
            PCALCERFFactory(CFG.linebacker),
        ):
            clone = pickle.loads(pickle.dumps(factory))
            assert type(clone()) is type(factory())


class TestCacheRoundTrip:
    def test_hit_after_process_restart(self, tmp_path):
        spec = make_spec()
        first = make_runner(tmp_path)
        cold = first.run(spec)
        assert first.stats.simulated == 1

        # A fresh runner over the same directory models a new process:
        # the in-memory memo is empty, only the disk cache persists.
        warm_runner = make_runner(tmp_path)
        warm = warm_runner.run(spec)
        assert warm_runner.stats.simulated == 0
        assert warm_runner.stats.cache_hits == 1
        assert warm.ipc == cold.ipc
        assert warm.instructions == cold.instructions
        assert warm.request_breakdown == cold.request_breakdown

    def test_memo_preserves_identity(self, tmp_path):
        runner = make_runner(tmp_path)
        spec = make_spec()
        assert runner.run(spec) is runner.run(spec)

    def test_corrupted_entry_recovers(self, tmp_path):
        spec = make_spec()
        runner = make_runner(tmp_path)
        runner.run(spec)
        cache = runner.cache
        path = cache.path_for(cache.key_for(spec))
        assert path.is_file()
        path.write_bytes(b"this is not a pickle")

        recovered = make_runner(tmp_path)
        result = recovered.run(spec)
        assert recovered.stats.simulated == 1  # fell back to re-simulation
        assert result.instructions > 0
        # The entry was rewritten and is healthy again.
        assert make_runner(tmp_path).run(spec).ipc == result.ipc

    def test_foreign_schema_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for(make_spec())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"schema": -1, "key": key, "payload": 3}))
        assert cache.get(key) is MISS
        assert not path.exists()  # discarded, not resurrected

    def test_no_cache_runner_never_touches_disk(self):
        runner = ExperimentRunner(use_cache=False)
        assert runner.cache is None
        runner.run(make_spec())
        assert runner.stats.simulated == 1

    def test_info_and_clear(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.run(make_spec())
        info = runner.cache.info()
        assert info.entries == 1
        assert info.total_bytes > 0
        assert runner.cache.clear() == 1
        assert runner.cache.info().entries == 0


class TestParallelEquivalence:
    SPECS = [
        make_spec(app="S2", arch="baseline"),
        make_spec(app="LI", arch="baseline"),
        make_spec(app="S2", arch="linebacker"),
    ]

    def test_workers2_matches_serial(self):
        serial = ExperimentRunner(workers=1, use_cache=False)
        parallel = ExperimentRunner(workers=2, use_cache=False)
        serial_results = serial.run_many(self.SPECS)
        parallel_results = parallel.run_many(self.SPECS)
        for s, p in zip(serial_results, parallel_results):
            assert s.ipc == p.ipc
            assert s.instructions == p.instructions
            assert s.cycles == p.cycles
            assert s.request_breakdown == p.request_breakdown

    def test_cached_matches_fresh(self, tmp_path):
        spec = make_spec(app="LI")
        fresh = ExperimentRunner(use_cache=False).run(spec)
        make_runner(tmp_path).run(spec)
        cached = make_runner(tmp_path).run(spec)
        assert cached.ipc == fresh.ipc
        assert cached.instructions == fresh.instructions

    def test_duplicate_specs_coalesce(self, tmp_path):
        runner = make_runner(tmp_path)
        spec = make_spec()
        a, b = runner.run_many([spec, spec])
        assert a is b
        assert runner.stats.simulated == 1

    def test_duplicate_specs_each_get_a_record(self, tmp_path):
        """Regression: duplicates coalesced within one ``run_many``
        batch used to vanish from ``stats.records`` entirely, so the
        record count silently disagreed with the input count. Every
        input spec must yield exactly one record."""
        runner = make_runner(tmp_path)
        spec_a, spec_b = make_spec(), make_spec(app="LI")
        batch = [spec_a, spec_b, spec_a, spec_a]
        results = runner.run_many(batch)
        assert len(results) == len(batch)
        assert len(runner.stats.records) == len(batch)
        sources = [r.source for r in runner.stats.records if r.key == spec_a.key]
        assert sorted(sources) == ["coalesced", "coalesced", "run"]
        assert runner.stats.coalesced == 2
        assert runner.stats.simulated == 2


class TestContextDelegation:
    def test_best_swl_keyed_by_content_not_identity(self, tmp_path):
        """Regression: the old memo keyed Best-SWL on ``id(config)``,
        which aliases across equal-valued configs. Two contexts built
        from *distinct but equal* configs must share one sweep."""
        runner = make_runner(tmp_path)
        ctx_a = ExperimentContext(
            config=scaled_config(num_sms=1, window_cycles=600),
            scale=0.1,
            apps=("S2",),
            runner=runner,
        )
        ctx_b = ExperimentContext(
            config=scaled_config(num_sms=1, window_cycles=600),
            scale=0.1,
            apps=("S2",),
            runner=runner,
        )
        assert ctx_a.config is not ctx_b.config
        first = ctx_a.run("S2", "best_swl")
        second = ctx_b.run("S2", "best_swl")
        assert first is second  # one sweep, memo-shared by content hash

    def test_removed_wrapper_methods_are_gone(self, tmp_path):
        # The one-method-per-architecture API was deprecated in PR 1 and
        # removed in PR 6; the registry spelling is the only one left.
        ctx = ExperimentContext(
            config=CFG, scale=0.1, apps=("S2",), runner=make_runner(tmp_path)
        )
        for legacy in ("baseline", "linebacker", "pcal_svc", "cache_ext"):
            assert not hasattr(ctx, legacy)
        assert ctx.run("S2", "baseline") is ctx.run("S2", "baseline")

    def test_portable_results_support_analysis_surface(self, tmp_path):
        ctx = ExperimentContext(
            config=CFG, scale=0.1, apps=("S2",), runner=make_runner(tmp_path)
        )
        result = ctx.run("S2", "linebacker")
        assert result.sms[0].done
        assert result.sms[0].l1.num_sets >= 1
        for ext in result.extensions:
            assert ext.stats is not None
            assert ext.load_monitor.windows_elapsed >= 0
            assert ext.vtt is not None
        tracked = ctx.run("S2", "baseline", track_loads=True)
        assert tracked.sms[0].load_tracker is not None
        assert tracked.sms[0].load_tracker.mean_streaming_bytes() >= 0.0


class TestExecuteJob:
    def test_execute_job_is_self_contained(self):
        spec = make_spec(scale=0.05)
        payload, seconds = execute_job(spec)
        assert payload.instructions > 0
        assert seconds > 0.0

    def test_spec_is_picklable(self):
        spec = make_spec(lb_config=CFG.linebacker)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key == spec.key
