"""Service-layer tests: the HTTP coordinator over a real worker fleet.

Every end-to-end scenario runs against an actual ``ThreadingHTTPServer``
on a loopback socket with genuine ``python -m repro worker``
subprocesses behind it — no mocked transports. The invariants mirror
the distributed suite's: a submission either completes with results
bit-identical to in-process execution (pinned via the golden
fingerprint helpers) or surfaces a *simulation* error; no
infrastructure fault may wedge the service or smuggle in a wrong
payload, and no worker process may outlive its fleet.
"""

import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from fault_injection import flaky_worker_command  # noqa: E402
from golden import fingerprint_value  # noqa: E402
from repro.api import Session  # noqa: E402
from repro.config import scaled_config  # noqa: E402
from repro.options import RunOptions  # noqa: E402
from repro.runner import ExperimentRunner, JobSpec, RemoteJobError  # noqa: E402
from repro.service import (  # noqa: E402
    JOB_SCHEMA_VERSION,
    Coordinator,
    SchemaError,
    ServiceClient,
    ServiceError,
    decode_jobspec,
    encode_jobspec,
    serve,
)

CFG = scaled_config(num_sms=1, window_cycles=600)
TINY = 0.05


def make_spec(app="S2", arch="baseline", config=CFG, scale=TINY, **overrides):
    return JobSpec.build(
        app=app, arch=arch, config=config, scale=scale, overrides=overrides
    )


def start_service(tmpdir, **coordinator_kwargs):
    """Boot a coordinator + HTTP server on a free loopback port."""
    coordinator_kwargs.setdefault("workers", 2)
    coordinator_kwargs.setdefault("cache_dir", str(tmpdir))
    coordinator = Coordinator(**coordinator_kwargs)
    server = serve(host="127.0.0.1", port=0, coordinator=coordinator)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, coordinator, url


def stop_service(server, coordinator):
    server.shutdown()
    server.server_close()
    coordinator.shutdown()


# ---------------------------------------------------------------------------
# JSON job schema
# ---------------------------------------------------------------------------
class TestSchema:
    def test_roundtrip_preserves_content_hash(self):
        spec = make_spec("S2", "linebacker", track_loads=True)
        doc = encode_jobspec(spec)
        assert doc["schema"] == JOB_SCHEMA_VERSION
        assert decode_jobspec(doc).key == spec.key

    def test_roundtrip_is_pure_json(self):
        doc = encode_jobspec(make_spec("LI", "best_swl"))
        again = json.loads(json.dumps(doc))
        assert decode_jobspec(again).key == decode_jobspec(doc).key

    def test_options_travel_through_document(self):
        spec = make_spec("S2", "linebacker", timeseries=True)
        decoded = decode_jobspec(encode_jobspec(spec))
        assert decoded.options == RunOptions(timeseries=True)

    def test_schema_version_mismatch_rejected(self):
        doc = encode_jobspec(make_spec())
        doc["schema"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="upgrade the older peer"):
            decode_jobspec(doc)

    def test_unknown_field_rejected(self):
        doc = encode_jobspec(make_spec())
        doc["frobnicate"] = 1
        with pytest.raises(SchemaError, match="frobnicate"):
            decode_jobspec(doc)

    def test_unknown_app_and_arch_rejected(self):
        doc = encode_jobspec(make_spec())
        doc["app"] = "NOPE"
        with pytest.raises(SchemaError, match="NOPE"):
            decode_jobspec(doc)
        doc = encode_jobspec(make_spec())
        doc["arch"] = "warp9"
        with pytest.raises(SchemaError, match="warp9"):
            decode_jobspec(doc)

    def test_nested_config_override_roundtrips(self):
        from repro.config import LinebackerConfig

        spec = make_spec(
            "S2", "linebacker", lb_config=LinebackerConfig(vtt_ways=2)
        )
        decoded = decode_jobspec(encode_jobspec(spec))
        assert decoded.key == spec.key
        assert decoded.overrides["lb_config"].vtt_ways == 2


# ---------------------------------------------------------------------------
# End to end over HTTP
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    server, coordinator, url = start_service(
        tmp_path_factory.mktemp("service-cache"), workers=2
    )
    yield {"server": server, "coordinator": coordinator, "url": url}
    stop_service(server, coordinator)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service["url"])


class TestServiceEndToEnd:
    def test_healthz_reports_versions_and_fleet(self, client):
        doc = client.healthz()
        assert doc["ok"] is True
        assert doc["schema"] == JOB_SCHEMA_VERSION
        assert doc["workers_alive"] >= 1

    def test_submit_poll_result_matches_inline_fingerprint(self, client):
        spec = make_spec("S2", "linebacker")
        doc = client.submit(spec)
        assert doc["job_id"] == spec.key
        served = client.result(doc["job_id"], timeout=120)
        inline = ExperimentRunner(
            workers=1, use_cache=False, executor="inline"
        ).run(spec)
        assert fingerprint_value("linebacker", served) == fingerprint_value(
            "linebacker", inline
        )

    def test_duplicate_submission_coalesces(self, client):
        spec = make_spec("LI", "baseline")
        first = client.submit(spec)
        second = client.submit(spec)
        assert second["job_id"] == first["job_id"]
        assert second["coalesced"] or second["cached"]

    def test_concurrent_clients_share_one_job(self, service):
        spec = make_spec("KM", "baseline")
        docs = [None, None]

        def submit(slot):
            docs[slot] = ServiceClient(service["url"]).submit(spec)

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert docs[0]["job_id"] == docs[1]["job_id"]
        results = [
            ServiceClient(service["url"]).result(d["job_id"], timeout=120)
            for d in docs
        ]
        assert results[0].instructions == results[1].instructions
        stats = service["coordinator"].stats()
        assert stats["coalesced"] >= 1

    def test_status_endpoint_carries_provenance(self, client):
        spec = make_spec("S2", "linebacker")
        doc = client.submit(spec)
        client.result(doc["job_id"], timeout=120)
        status = client.status(doc["job_id"])
        assert status["status"] == "done"
        assert status["source"] in ("fleet", "cache", "degraded")
        assert status["app"] == "S2" and status["arch"] == "linebacker"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("f" * 64)
        assert err.value.status == 404

    def test_malformed_submission_is_400(self, service):
        req = urllib.request.Request(
            service["url"] + "/v1/jobs",
            data=json.dumps({"schema": JOB_SCHEMA_VERSION}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_simulation_error_is_final_and_surfaces(self, client):
        spec = make_spec("S2", "baseline", max_concurrent_ctas=-3)
        doc = client.submit(spec)
        with pytest.raises(RemoteJobError):
            client.result(doc["job_id"], timeout=120)

    def test_fleet_endpoint_counts_work(self, client):
        doc = client.fleet()
        assert doc["fleet"]["size"] == 2
        assert doc["submits"] >= doc["unique_jobs"]
        assert set(doc["jobs"]) == {"queued", "running", "done", "failed"}

    def test_timeseries_endpoint_streams_rows_once(self, client):
        spec = make_spec("S2", "linebacker", timeseries=True)
        doc = client.submit(spec)
        rows = list(client.stream_timeseries(doc["job_id"], timeout=120))
        assert rows
        assert all("ipc" in row for row in rows)
        # The cursor is drained: a fresh stream re-yields, `since` does not.
        tail = client.timeseries(doc["job_id"], since=len(rows))
        assert tail["rows"] == []

    def test_timeseries_on_plain_run_is_409(self, client):
        spec = make_spec("LI", "baseline")
        doc = client.submit(spec)
        client.result(doc["job_id"], timeout=120)
        with pytest.raises(ServiceError) as err:
            client.timeseries(doc["job_id"])
        assert err.value.status == 409

    def test_session_connect_runs_against_service(self, service):
        with Session.connect(service["url"], config=CFG, scale=TINY) as s:
            handle = s.run("S2", "linebacker")
            result = handle.result(timeout=120)
            assert result.instructions > 0
            assert handle.status() == "done"
            assert s.stats["fleet"]["size"] == 2


# ---------------------------------------------------------------------------
# Shared cache as the read-through result store
# ---------------------------------------------------------------------------
class TestSharedCache:
    def test_results_survive_coordinator_restart(self, tmp_path):
        spec = make_spec("S2", "baseline")
        server, coordinator, url = start_service(tmp_path, workers=1)
        try:
            doc = ServiceClient(url).submit(spec)
            first = ServiceClient(url).result(doc["job_id"], timeout=120)
        finally:
            stop_service(server, coordinator)
        server, coordinator, url = start_service(tmp_path, workers=1)
        try:
            doc = ServiceClient(url).submit(spec)
            assert doc["cached"] is True
            assert doc["status"] == "done"
            again = ServiceClient(url).result(doc["job_id"], timeout=30)
            assert fingerprint_value("baseline", again) == fingerprint_value(
                "baseline", first
            )
        finally:
            stop_service(server, coordinator)


# ---------------------------------------------------------------------------
# Fault tiers behind the HTTP facade
# ---------------------------------------------------------------------------
class TestFaultTolerance:
    def test_worker_death_mid_job_requeues_to_respawn(self, tmp_path):
        marker = tmp_path / "died-once"
        server, coordinator, url = start_service(
            tmp_path / "cache",
            workers=1,
            worker_command=flaky_worker_command("die", marker),
        )
        try:
            spec = make_spec("S2", "baseline")
            doc = ServiceClient(url).submit(spec)
            result = ServiceClient(url).result(doc["job_id"], timeout=120)
            inline = ExperimentRunner(
                workers=1, use_cache=False, executor="inline"
            ).run(spec)
            assert fingerprint_value("baseline", result) == fingerprint_value(
                "baseline", inline
            )
            assert marker.exists()  # the fault really fired
            fleet = coordinator.fleet.stats()
            assert fleet["worker_deaths"] >= 1
            assert fleet["requeued"] >= 1
        finally:
            stop_service(server, coordinator)

    def test_exhausted_attempts_degrade_to_in_process(self, tmp_path):
        # Every spawn dies before answering: the fleet gives up and the
        # coordinator's degrade tier still produces a correct result.
        shim = tmp_path / "always_die.py"
        shim.write_text(
            "import sys\n"
            "from repro.runner.wire import encode_hello\n"
            "sys.stdout.write(encode_hello() + '\\n')\n"
            "sys.stdout.flush()\n"
            "sys.stdin.readline()\n"
            "raise SystemExit(1)\n"
        )
        server, coordinator, url = start_service(
            tmp_path / "cache",
            workers=1,
            worker_command=f"{{python}} -u {shim}",
            max_attempts=2,
            backoff=0.01,
        )
        try:
            spec = make_spec("LI", "baseline")
            doc = ServiceClient(url).submit(spec)
            result = ServiceClient(url).result(doc["job_id"], timeout=120)
            assert result.instructions > 0
            assert coordinator.degraded >= 1
            assert coordinator.job(doc["job_id"]).source == "degraded"
            assert coordinator.fleet.stats()["give_ups"] >= 1
        finally:
            stop_service(server, coordinator)

    def test_protocol_mismatch_parks_worker_with_reason(self, tmp_path):
        shim = tmp_path / "old_proto.py"
        shim.write_text(
            "import json, sys\n"
            "print(json.dumps({'v': 999, 'type': 'hello',"
            " 'proto': 999, 'pid': 1}))\n"
            "sys.stdout.flush()\n"
            "sys.stdin.readline()\n"
        )
        server, coordinator, url = start_service(
            tmp_path / "cache",
            workers=1,
            worker_command=f"{{python}} -u {shim}",
        )
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if coordinator.fleet.stats()["last_error"]:
                    break
                time.sleep(0.05)
            assert "wire protocol" in coordinator.fleet.stats()["last_error"]
        finally:
            stop_service(server, coordinator)

    def test_shutdown_leaves_no_orphan_workers(self, tmp_path):
        server, coordinator, url = start_service(tmp_path, workers=2)
        doc = ServiceClient(url).submit(make_spec("S2", "baseline"))
        ServiceClient(url).result(doc["job_id"], timeout=120)
        pids = coordinator.fleet.worker_pids()
        assert pids
        stop_service(server, coordinator)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if not any(Path(f"/proc/{pid}").exists() for pid in pids):
                return
            time.sleep(0.05)
        alive = [pid for pid in pids if Path(f"/proc/{pid}").exists()]
        assert not alive, f"orphaned workers: {alive}"
