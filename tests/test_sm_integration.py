"""Integration tests: SM pipeline, GPU clock loop, CTA lifecycle."""

from repro.config import GPUConfig, scaled_config
from repro.gpu.gpu import (
    GPU,
    run_kernel,
    statically_unused_register_bytes,
)
from repro.gpu.isa import alu, exit_inst, load, store
from repro.gpu.sm import SM
from repro.gpu.trace import from_instruction_lists


def tiny_config(**kw):
    cfg = scaled_config(num_sms=1, window_cycles=500)
    return cfg


def one_warp_kernel(insts, regs=8):
    return from_instruction_lists("k", [[list(insts)]], regs_per_thread=regs)


class TestBasicExecution:
    def test_alu_only_kernel_completes(self):
        cfg = tiny_config()
        result = run_kernel(cfg, one_warp_kernel([alu() for _ in range(10)]))
        assert result.instructions == 11  # 10 ALU + EXIT
        assert result.cycles > 0

    def test_load_hits_after_fill(self):
        # max_outstanding_loads=1 forces blocking semantics so the
        # second load runs after the first one's fill.
        from dataclasses import replace

        cfg = tiny_config()
        cfg = replace(cfg, gpu=replace(cfg.gpu, max_outstanding_loads=1))
        insts = [load(0x100, [5]), load(0x100, [5])]
        result = run_kernel(cfg, one_warp_kernel(insts))
        stats = result.sm_stats[0]
        assert stats.l1_misses == 1
        assert stats.l1_hits == 1

    def test_scoreboarded_loads_merge_in_mshr(self):
        """With the default outstanding limit, back-to-back loads to
        the same line issue before the fill and merge in the MSHR."""
        cfg = tiny_config()
        insts = [load(0x100, [5]), load(0x100, [5])]
        result = run_kernel(cfg, one_warp_kernel(insts))
        assert result.sm_stats[0].l1_misses == 2
        assert result.dram_reads <= 1 or result.sms[0].mshr.merged_requests >= 1

    def test_store_does_not_allocate(self):
        cfg = tiny_config()
        insts = [store(0x200, [7]), load(0x100, [7])]
        result = run_kernel(cfg, one_warp_kernel(insts))
        assert result.sm_stats[0].l1_misses == 1
        assert result.traffic.store_write_lines == 1

    def test_write_evict_policy(self):
        """A store to a resident line evicts it (write-evict)."""
        cfg = tiny_config()
        insts = [load(0x100, [3]), store(0x200, [3]), load(0x100, [3])]
        result = run_kernel(cfg, one_warp_kernel(insts))
        assert result.sm_stats[0].l1_misses == 2

    def test_ipc_bounded_by_issue_width(self):
        cfg = tiny_config()
        result = run_kernel(cfg, one_warp_kernel([alu() for _ in range(50)]))
        per_sm_ipc = result.ipc
        assert per_sm_ipc <= cfg.gpu.num_schedulers

    def test_divergent_load_fetches_all_lines(self):
        cfg = tiny_config()
        result = run_kernel(cfg, one_warp_kernel([load(0x100, [1, 2, 3, 4])]))
        assert result.sm_stats[0].mem_requests == 4


class TestMultiWarpMultiCTA:
    def make_kernel(self, n_ctas=4, warps=2, loads_per_warp=6):
        per_warp = [
            [
                [load(0x100, [cta * 100 + w * 10 + i]) for i in range(loads_per_warp)]
                for w in range(warps)
            ]
            for cta in range(n_ctas)
        ]
        return from_instruction_lists("multi", per_warp, regs_per_thread=16)

    def test_all_ctas_complete(self):
        cfg = tiny_config()
        kernel = self.make_kernel(n_ctas=6)
        result = run_kernel(cfg, kernel)
        expected = 6 * 2 * (6 + 1)  # loads + exit per warp
        assert result.instructions == expected

    def test_cta_limit_respected(self):
        cfg = tiny_config()
        kernel = self.make_kernel(n_ctas=8)
        gpu = GPU(cfg, kernel, max_concurrent_ctas=2)
        assert all(len(sm.ctas) <= 2 for sm in gpu.sms)
        result = gpu.run()
        assert result.instructions == 8 * 2 * 7

    def test_mshr_merging_counts(self):
        """Several warps missing on the same line share one fetch."""
        cfg = tiny_config()
        per_warp = [[[load(0x100, [42])] for _ in range(4)]]
        kernel = from_instruction_lists("merge", per_warp, regs_per_thread=8)
        gpu = GPU(cfg, kernel)
        result = gpu.run()
        assert result.dram_reads <= 2  # one demand fetch (plus none extra)
        assert result.sm_stats[0].l1_misses >= 1


class TestOccupancy:
    def test_thread_limit(self):
        cfg = GPUConfig()
        kernel = from_instruction_lists(
            "k", [[[alu()]] * 8 for _ in range(2)], regs_per_thread=8
        )
        # 8 warps/CTA = 256 threads; 2048/256 = 8 CTAs.
        assert SM.hardware_occupancy(cfg, kernel) == 8

    def test_register_limit(self):
        cfg = GPUConfig()
        kernel = from_instruction_lists(
            "k", [[[alu()]] * 8 for _ in range(2)], regs_per_thread=64
        )
        # 8 x 64 = 512 warp-regs per CTA; 2048/512 = 4 CTAs.
        assert SM.hardware_occupancy(cfg, kernel) == 4

    def test_statically_unused_registers(self):
        cfg = GPUConfig()
        kernel = from_instruction_lists(
            "k", [[[alu()]] * 8 for _ in range(2)], regs_per_thread=16
        )
        # Occupancy 8 (threads), 8x16x8 = 1024 regs used -> 128 KB SUR.
        assert statically_unused_register_bytes(cfg, kernel) == 128 * 1024

    def test_shared_memory_limit(self):
        cfg = GPUConfig()
        from repro.gpu.trace import KernelTrace

        kernel = KernelTrace(
            name="k",
            num_ctas=4,
            warps_per_cta=1,
            regs_per_thread=8,
            warp_trace=lambda c, w: iter([exit_inst()]),
            shared_mem_per_cta=48 * 1024,
        )
        assert SM.hardware_occupancy(cfg, kernel) == 2


class TestDeterminism:
    def test_same_kernel_same_result(self):
        cfg = tiny_config()
        kernel_a = self.kernel()
        kernel_b = self.kernel()
        r1 = run_kernel(cfg, kernel_a)
        r2 = run_kernel(cfg, kernel_b)
        assert r1.cycles == r2.cycles
        assert r1.instructions == r2.instructions

    @staticmethod
    def kernel():
        per_warp = [
            [[load(0x100, [w * 7 + i]) for i in range(5)] for w in range(3)]
            for _ in range(2)
        ]
        return from_instruction_lists("det", per_warp, regs_per_thread=8)


class TestRegisterTokens:
    def test_launch_initializes_register_contents(self):
        cfg = tiny_config()
        kernel = one_warp_kernel([alu()], regs=16)
        gpu = GPU(cfg, kernel)
        sm = gpu.sms[0]
        cta = next(iter(sm.ctas.values()))
        assert cta.register_range is not None
        for r in cta.register_range:
            assert sm.register_file.peek(r) is not None

    def test_registers_freed_on_completion(self):
        cfg = tiny_config()
        kernel = one_warp_kernel([alu()], regs=16)
        gpu = GPU(cfg, kernel)
        gpu.run()
        assert gpu.sms[0].register_file.allocated_count() == 0
