"""Tests for statistics collection (SM stats, per-load tracking)."""

import pytest

from repro.gpu.stats import LoadBehavior, LoadTracker, SMStats


class TestSMStats:
    def test_ipc(self):
        s = SMStats(instructions=500, cycles=250)
        assert s.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert SMStats().ipc == 0.0

    def test_request_breakdown_sums_to_one(self):
        s = SMStats(l1_hits=30, l1_misses=50, victim_hits=15, bypasses=5)
        breakdown = s.request_breakdown
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["reg_hit"] == pytest.approx(0.15)

    def test_request_breakdown_empty(self):
        assert SMStats().request_breakdown == {
            "hit": 0.0, "miss": 0.0, "bypass": 0.0, "reg_hit": 0.0
        }

    def test_request_breakdown_exact_fractions(self):
        """Each category is its exact share of all L1 requests — the
        stacked-bar fractions of paper Figure 18."""
        s = SMStats(l1_hits=30, l1_misses=50, victim_hits=15, bypasses=5)
        b = s.request_breakdown
        assert b["hit"] == pytest.approx(0.30)
        assert b["miss"] == pytest.approx(0.50)
        assert b["reg_hit"] == pytest.approx(0.15)
        assert b["bypass"] == pytest.approx(0.05)


class TestLoadBehavior:
    def test_reuse_detection(self):
        b = LoadBehavior()
        b.record(1, hit=False)
        b.record(1, hit=True)
        b.record(2, hit=False)
        assert b.lines_reused == {1}
        assert b.lines_touched == {1, 2}
        assert b.reused_bytes == 128
        assert b.touched_bytes == 256

    def test_miss_ratio(self):
        b = LoadBehavior()
        for i in range(8):
            b.record(i, hit=False)
        b.record(0, hit=True)
        b.record(1, hit=True)
        assert b.miss_ratio == pytest.approx(0.8)

    def test_window_reset(self):
        b = LoadBehavior()
        b.record(1, hit=True)
        b.reset_window()
        assert b.accesses == 0
        assert not b.lines_touched


class TestStreamingClassification:
    """Paper: a load streams when >95% of accesses in a window touch
    never-seen lines (miss ratio with an infinite cache above 95%)."""

    def test_pure_stream_detected(self):
        b = LoadBehavior()
        for i in range(100):
            b.record(i, hit=False)
        assert LoadTracker.is_streaming_window(b)

    def test_reuse_heavy_not_streaming(self):
        b = LoadBehavior()
        for _ in range(10):
            for i in range(5):
                b.record(i, hit=True)
        assert not LoadTracker.is_streaming_window(b)

    def test_empty_window_not_streaming(self):
        assert not LoadTracker.is_streaming_window(LoadBehavior())


class TestLoadTracker:
    def test_windows_roll_over(self):
        tracker = LoadTracker(window_cycles=100)
        tracker.record(pc=0x100, line_addr=1, hit=False, cycle=10)
        tracker.record(pc=0x100, line_addr=1, hit=True, cycle=50)
        tracker.record(pc=0x100, line_addr=2, hit=False, cycle=150)  # new window
        tracker.close_window()
        assert len(tracker.window_reused_bytes[0x100]) == 2

    def test_window_boundaries_stay_on_the_fixed_grid(self):
        """Rolling over must re-anchor to a multiple of the window
        size, not to the triggering access's cycle — otherwise sparse
        access patterns silently stretch every subsequent window."""
        tracker = LoadTracker(window_cycles=100)
        tracker.record(pc=0x1, line_addr=1, hit=False, cycle=10)
        # Crosses into [200, 300): closes window 1, anchors at 200.
        tracker.record(pc=0x1, line_addr=1, hit=True, cycle=250)
        assert tracker._window_start == 200
        # 320 is past 300, so this must close window 2 — with drifting
        # anchors (start = 250) it would land in the same window.
        tracker.record(pc=0x1, line_addr=2, hit=False, cycle=320)
        assert tracker._window_start == 300
        tracker.close_window()
        assert len(tracker.window_miss_ratios[0x1]) == 3

    def test_top_loads_reused_working_set(self):
        tracker = LoadTracker(window_cycles=1000)
        # Load A: 3 reused lines; load B: 1 reused line.
        for line in (1, 2, 3):
            tracker.record(0x100, line, False, 0)
            tracker.record(0x100, line, True, 1)
        tracker.record(0x204, 50, False, 0)
        tracker.record(0x204, 50, True, 1)
        tracker.close_window()
        assert tracker.top_loads_reused_working_set(4) == 4 * 128

    def test_top_n_limits_loads(self):
        tracker = LoadTracker(window_cycles=1000)
        for pc in range(8):
            tracker.record(pc, pc * 100, False, 0)
            tracker.record(pc, pc * 100, True, 1)
        tracker.close_window()
        top1 = tracker.top_loads_reused_working_set(1)
        top8 = tracker.top_loads_reused_working_set(8)
        assert top1 == 128
        assert top8 == 8 * 128

    def test_streaming_bytes_accumulated(self):
        tracker = LoadTracker(window_cycles=1000)
        for i in range(200):
            tracker.record(0x100, i, False, 0)
        tracker.close_window()
        assert tracker.mean_streaming_bytes() == 200 * 128

    def test_streaming_excluded_from_reused_working_set(self):
        tracker = LoadTracker(window_cycles=1000)
        for i in range(200):
            tracker.record(0x100, i, False, 0)
        tracker.close_window()
        assert tracker.top_loads_reused_working_set(4) == 0
