"""Manifest pinning for the 20-app suite and the test-module registry.

The figure benchmarks compare architectures *on these workloads*; a
silent change to an app's parameters would shift every measured number
without any test noticing. This file pins the structural manifest —
grid shapes, register pressure classes, load patterns — so calibration
changes are deliberate (and update this manifest alongside).

It also pins :data:`TEST_MODULES`, the registry of test files in this
directory: a test module that is added without being registered here
(or registered but deleted) fails loudly, so CI job definitions that
enumerate modules explicitly (e.g. the distributed job) can never
silently drift out of sync with the tree.
"""

from pathlib import Path

from repro.config import GPUConfig
from repro.gpu.sm import SM
from repro.workloads.generator import Pattern
from repro.workloads.suite import APP_SPECS, kernel_for

#: Every test module in ``tests/``; update alongside adding/removing files.
TEST_MODULES = {
    "test_analysis",
    "test_api",
    "test_backends",
    "test_backup",
    "test_baselines",
    "test_cache",
    "test_capability_flags",
    "test_ccws",
    "test_charts",
    "test_classify",
    "test_cli",
    "test_combos",
    "test_config",
    "test_cta_throttle",
    "test_distributed",
    "test_dram_l2",
    "test_dram_timing",
    "test_extension",
    "test_failure_paths",
    "test_fuzz",
    "test_generator_extra",
    "test_golden_equivalence",
    "test_interconnect",
    "test_isa_trace",
    "test_linebacker_integration",
    "test_lint",
    "test_lint_dataflow",
    "test_load_monitor",
    "test_metrics",
    "test_mshr",
    "test_overhead",
    "test_power",
    "test_properties",
    "test_register_file",
    "test_results_api",
    "test_runner",
    "test_service",
    "test_sm_integration",
    "test_stats",
    "test_suite_manifest",
    "test_traceio",
    "test_victim_tag_table",
    "test_warp_scheduler",
    "test_workflow_protocol",
    "test_workload_spec",
    "test_workloads",
}

#: Importable helper modules that are *not* collected as tests but are
#: part of the test tree's public surface.
SUPPORT_MODULES = {"__init__", "fault_injection", "golden", "workload_helpers"}

#: name -> (num_ctas, warps_per_cta, regs_per_thread, n_loads, has_stream)
MANIFEST = {
    "S2": (192, 4, 16, 3, False),
    "BI": (192, 4, 16, 3, True),
    "AT": (192, 4, 16, 2, False),
    "S1": (192, 4, 16, 2, False),
    "CF": (192, 4, 24, 3, True),
    "GE": (160, 4, 16, 2, False),
    "KM": (192, 4, 16, 3, True),
    "BC": (192, 4, 24, 3, True),
    "MV": (192, 4, 16, 2, False),
    "PF": (192, 4, 24, 3, True),
    "BG": (96, 8, 16, 2, True),
    "LI": (96, 8, 16, 2, True),
    "SR2": (96, 8, 24, 2, True),
    "SP": (96, 8, 16, 3, True),
    "BR": (96, 8, 16, 2, True),
    "FD": (96, 8, 24, 2, True),
    "GA": (160, 4, 16, 2, False),
    "2D": (96, 8, 16, 2, True),
    "SR1": (96, 8, 24, 2, False),
    "HS": (96, 8, 32, 2, True),
}


class TestManifest:
    def test_every_app_matches_pinned_shape(self):
        for name, (ctas, warps, regs, n_loads, has_stream) in MANIFEST.items():
            spec = APP_SPECS[name]
            assert spec.num_ctas == ctas, name
            assert spec.warps_per_cta == warps, name
            assert spec.regs_per_thread == regs, name
            assert len(spec.loads) == n_loads, name
            streams = any(l.pattern is Pattern.STREAM for l in spec.loads)
            assert streams == has_stream, name

    def test_manifest_covers_whole_suite(self):
        assert set(MANIFEST) == set(APP_SPECS)

    def test_test_module_registry_matches_tree(self):
        on_disk = {p.stem for p in Path(__file__).parent.glob("*.py")}
        registered = TEST_MODULES | SUPPORT_MODULES
        missing = on_disk - registered
        stale = registered - on_disk
        assert not missing, f"unregistered test modules: {sorted(missing)}"
        assert not stale, f"registered but deleted: {sorted(stale)}"

    def test_occupancy_classes(self):
        """Sensitive apps run 16 CTAs/SM (fine throttle steps); the
        8-warp insensitive apps run 8."""
        cfg = GPUConfig()
        for name, spec in APP_SPECS.items():
            occupancy = SM.hardware_occupancy(cfg, kernel_for(name, 0.05))
            if spec.warps_per_cta == 4 and spec.regs_per_thread == 16:
                assert occupancy == 16, name
            elif spec.warps_per_cta == 8:
                assert occupancy == 8, name

    def test_first_instructions_stable(self):
        """Spot-pin the first memory access of a few apps — a cheap
        tripwire for generator-level drift."""
        expectations = {}
        for name in ("S2", "KM", "LI"):
            kernel = kernel_for(name, scale=0.05)
            first_load = next(
                i for i in kernel.materialize(0, 0) if i.is_memory
            )
            expectations[name] = (first_load.pc, first_load.line_addrs)
        # Re-derive: identical inputs must give identical streams.
        for name, (pc, addrs) in expectations.items():
            kernel = kernel_for(name, scale=0.05)
            first_load = next(
                i for i in kernel.materialize(0, 0) if i.is_memory
            )
            assert (first_load.pc, first_load.line_addrs) == (pc, addrs)
