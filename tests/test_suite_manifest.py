"""Manifest pinning for the 20-app suite.

The figure benchmarks compare architectures *on these workloads*; a
silent change to an app's parameters would shift every measured number
without any test noticing. This file pins the structural manifest —
grid shapes, register pressure classes, load patterns — so calibration
changes are deliberate (and update this manifest alongside).
"""

from repro.config import GPUConfig
from repro.gpu.sm import SM
from repro.workloads.generator import Pattern
from repro.workloads.suite import APP_SPECS, kernel_for

#: name -> (num_ctas, warps_per_cta, regs_per_thread, n_loads, has_stream)
MANIFEST = {
    "S2": (192, 4, 16, 3, False),
    "BI": (192, 4, 16, 3, True),
    "AT": (192, 4, 16, 2, False),
    "S1": (192, 4, 16, 2, False),
    "CF": (192, 4, 24, 3, True),
    "GE": (160, 4, 16, 2, False),
    "KM": (192, 4, 16, 3, True),
    "BC": (192, 4, 24, 3, True),
    "MV": (192, 4, 16, 2, False),
    "PF": (192, 4, 24, 3, True),
    "BG": (96, 8, 16, 2, True),
    "LI": (96, 8, 16, 2, True),
    "SR2": (96, 8, 24, 2, True),
    "SP": (96, 8, 16, 3, True),
    "BR": (96, 8, 16, 2, True),
    "FD": (96, 8, 24, 2, True),
    "GA": (160, 4, 16, 2, False),
    "2D": (96, 8, 16, 2, True),
    "SR1": (96, 8, 24, 2, False),
    "HS": (96, 8, 32, 2, True),
}


class TestManifest:
    def test_every_app_matches_pinned_shape(self):
        for name, (ctas, warps, regs, n_loads, has_stream) in MANIFEST.items():
            spec = APP_SPECS[name]
            assert spec.num_ctas == ctas, name
            assert spec.warps_per_cta == warps, name
            assert spec.regs_per_thread == regs, name
            assert len(spec.loads) == n_loads, name
            streams = any(l.pattern is Pattern.STREAM for l in spec.loads)
            assert streams == has_stream, name

    def test_manifest_covers_whole_suite(self):
        assert set(MANIFEST) == set(APP_SPECS)

    def test_occupancy_classes(self):
        """Sensitive apps run 16 CTAs/SM (fine throttle steps); the
        8-warp insensitive apps run 8."""
        cfg = GPUConfig()
        for name, spec in APP_SPECS.items():
            occupancy = SM.hardware_occupancy(cfg, kernel_for(name, 0.05))
            if spec.warps_per_cta == 4 and spec.regs_per_thread == 16:
                assert occupancy == 16, name
            elif spec.warps_per_cta == 8:
                assert occupancy == 8, name

    def test_first_instructions_stable(self):
        """Spot-pin the first memory access of a few apps — a cheap
        tripwire for generator-level drift."""
        expectations = {}
        for name in ("S2", "KM", "LI"):
            kernel = kernel_for(name, scale=0.05)
            first_load = next(
                i for i in kernel.materialize(0, 0) if i.is_memory
            )
            expectations[name] = (first_load.pc, first_load.line_addrs)
        # Re-derive: identical inputs must give identical streams.
        for name, (pc, addrs) in expectations.items():
            kernel = kernel_for(name, scale=0.05)
            first_load = next(
                i for i in kernel.materialize(0, 0) if i.is_memory
            )
            assert (first_load.pc, first_load.line_addrs) == (pc, addrs)
