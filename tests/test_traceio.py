"""Tests for kernel trace serialization (save/load round trips)."""

import json

import pytest

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.gpu.isa import Op, alu, load, store
from repro.gpu.trace import from_instruction_lists
from repro.workloads.suite import kernel_for
from repro.workloads.traceio import load_trace, save_trace


def small_kernel():
    per_warp = [
        [
            [load(0x100, [w * 5 + i]) for i in range(3)]
            + [alu(), store(0x200, [w + 90])]
            for w in range(2)
        ]
        for _ in range(2)
    ]
    return from_instruction_lists("roundtrip", per_warp, regs_per_thread=12)


class TestRoundTrip:
    def test_save_returns_instruction_count(self, tmp_path):
        path = tmp_path / "k.jsonl"
        count = save_trace(small_kernel(), path)
        assert count == 2 * 2 * 6  # 3 loads + alu + store + exit

    def test_roundtrip_preserves_streams(self, tmp_path):
        path = tmp_path / "k.jsonl"
        original = small_kernel()
        save_trace(original, path)
        loaded = load_trace(path)
        for cta in range(2):
            for warp in range(2):
                a = original.materialize(cta, warp)
                b = loaded.materialize(cta, warp)
                assert [(i.op, i.pc, i.line_addrs) for i in a] == [
                    (i.op, i.pc, i.line_addrs) for i in b
                ]

    def test_roundtrip_preserves_metadata(self, tmp_path):
        path = tmp_path / "k.jsonl"
        save_trace(small_kernel(), path)
        loaded = load_trace(path)
        assert loaded.name == "roundtrip"
        assert loaded.num_ctas == 2
        assert loaded.warps_per_cta == 2
        assert loaded.regs_per_thread == 12

    def test_loaded_kernel_simulates_identically(self, tmp_path):
        path = tmp_path / "k.jsonl"
        cfg = scaled_config(num_sms=1, window_cycles=500)
        original = small_kernel()
        save_trace(original, path)
        loaded = load_trace(path)
        r1 = run_kernel(cfg, small_kernel())
        r2 = run_kernel(cfg, loaded)
        assert r1.cycles == r2.cycles
        assert r1.instructions == r2.instructions

    def test_suite_app_roundtrip(self, tmp_path):
        path = tmp_path / "app.jsonl"
        kernel = kernel_for("2D", scale=0.05)
        save_trace(kernel, path)
        loaded = load_trace(path)
        a = kernel.materialize(3, 1)
        b = loaded.materialize(3, 1)
        assert [(i.op, i.line_addrs) for i in a] == [(i.op, i.line_addrs) for i in b]


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_missing_header_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"name": "x"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_missing_warp_stream_rejected(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        header = {"name": "p", "num_ctas": 2, "warps_per_cta": 1, "regs_per_thread": 8}
        record = {"cta": 0, "warp": 0, "insts": [["alu", 0]]}
        path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_unknown_opcode_rejected(self, tmp_path):
        path = tmp_path / "op.jsonl"
        header = {"name": "p", "num_ctas": 1, "warps_per_cta": 1, "regs_per_thread": 8}
        record = {"cta": 0, "warp": 0, "insts": [["jump", 0]]}
        path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_exit_appended_when_missing(self, tmp_path):
        path = tmp_path / "noexit.jsonl"
        header = {"name": "p", "num_ctas": 1, "warps_per_cta": 1, "regs_per_thread": 8}
        record = {"cta": 0, "warp": 0, "insts": [["alu", 0]]}
        path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        loaded = load_trace(path)
        insts = loaded.materialize(0, 0)
        assert insts[-1].op is Op.EXIT
