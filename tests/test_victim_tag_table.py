"""Unit tests for the Victim Tag Table and its partitions."""

from repro.core.victim_tag_table import VictimTagTable


def make_vtt(num_sets=48, ways=4, partitions=8, offset=512, total=2048):
    return VictimTagTable(
        num_sets=num_sets,
        ways=ways,
        max_partitions=partitions,
        register_offset=offset,
        total_registers=total,
    )


def activate_all(vtt):
    for vp in vtt.partitions:
        vtt.activate(vp.index)


class TestGeometry:
    def test_paper_partition_geometry(self):
        """48 sets x 4 ways = 192 entries per VP, up to 8 VPs
        covering registers 512..2047 (paper Section 4.1)."""
        vtt = make_vtt()
        assert len(vtt.partitions) == 8
        assert all(vp.num_entries == 192 for vp in vtt.partitions)
        assert vtt.partitions[0].base_rn == 512
        assert vtt.partitions[-1].register_range.stop == 2048

    def test_partition_skipped_when_out_of_registers(self):
        vtt = make_vtt(total=1024)
        # Registers 512..1023 fit only 2 partitions of 192 + partial.
        assert len(vtt.partitions) == 2

    def test_equation_2_register_mapping(self):
        """RN = Offset + N * entries + X * ways + Y (paper Eq. 2)."""
        vtt = make_vtt()
        vp = vtt.partitions[3]
        assert vp.register_number(set_idx=10, way=2) == 512 + 3 * 192 + 10 * 4 + 2

    def test_register_mapping_is_injective(self):
        vtt = make_vtt()
        rns = {
            vp.register_number(x, y)
            for vp in vtt.partitions
            for x in range(vp.num_sets)
            for y in range(vp.ways)
        }
        assert len(rns) == 8 * 192

    def test_storage_bits_match_paper(self):
        """Section 4.2: 1536 entries x 24 bits = 4608 bytes."""
        vtt = make_vtt()
        assert vtt.storage_bits() / 8 == 4608


class TestLookupInsert:
    def test_insert_then_lookup_hits(self):
        vtt = make_vtt()
        activate_all(vtt)
        rn = vtt.insert(1000)
        hit = vtt.lookup(1000)
        assert hit is not None
        assert hit[0] == rn

    def test_lookup_miss(self):
        vtt = make_vtt()
        activate_all(vtt)
        assert vtt.lookup(123) is None

    def test_insert_without_active_partition_returns_none(self):
        vtt = make_vtt()
        assert vtt.insert(5) is None

    def test_sequential_search_latency_grows_with_partition(self):
        """Searching VPs is sequential, 3 cycles each (Table 3)."""
        vtt = make_vtt(num_sets=2, ways=1, partitions=4, offset=512, total=2048)
        activate_all(vtt)
        set0_addrs = [0, 2, 4, 6]  # all map to set 0
        rns = [vtt.insert(a) for a in set0_addrs]
        latencies = [vtt.lookup(a)[1] for a in set0_addrs]
        assert latencies == [3, 6, 9, 12]

    def test_reinsert_same_line_refreshes(self):
        vtt = make_vtt()
        activate_all(vtt)
        rn1 = vtt.insert(77)
        rn2 = vtt.insert(77)
        assert rn1 == rn2
        assert vtt.stats.inserts == 1

    def test_lru_eviction_within_set(self):
        vtt = make_vtt(num_sets=2, ways=2, partitions=1, offset=512, total=1024)
        vtt.activate(0)
        vtt.insert(0)
        vtt.insert(2)   # same set, second way
        vtt.lookup(0)   # refresh 0
        vtt.insert(4)   # evicts 2 (LRU)
        assert vtt.lookup(2) is None
        assert vtt.lookup(0) is not None

    def test_invalidated_entry_reused_in_priority(self):
        """Store-invalidated entries are replaced first (paper's store
        handling policy)."""
        vtt = make_vtt(num_sets=2, ways=2, partitions=1, offset=512, total=1024)
        vtt.activate(0)
        rn_a = vtt.insert(0)
        vtt.insert(2)
        invalidated_rn = vtt.invalidate(0)
        assert invalidated_rn == rn_a
        rn_new = vtt.insert(4)
        assert rn_new == rn_a  # reused the invalidated slot
        assert vtt.lookup(2) is not None  # valid entry untouched


class TestStoreInvalidation:
    def test_invalidate_removes_entry(self):
        vtt = make_vtt()
        activate_all(vtt)
        vtt.insert(55)
        assert vtt.invalidate(55) is not None
        assert vtt.lookup(55) is None

    def test_invalidate_missing_line_is_none(self):
        vtt = make_vtt()
        activate_all(vtt)
        assert vtt.invalidate(99) is None


class TestPartitionManagement:
    def test_activation_clears_entries(self):
        vtt = make_vtt()
        vtt.activate(0)
        vtt.insert(10)
        vtt.deactivate(0)
        vtt.activate(0)
        assert vtt.lookup(10) is None

    def test_sync_with_free_registers(self):
        vtt = make_vtt()
        free_above = 512 + 2 * 192  # first two partitions' registers busy
        vtt.sync_with_free_registers(lambda rn: rn >= free_above)
        active = [vp.index for vp in vtt.active_partitions()]
        assert active == [2, 3, 4, 5, 6, 7]

    def test_sync_deactivates_on_allocation(self):
        vtt = make_vtt()
        vtt.sync_with_free_registers(lambda rn: True)
        assert len(vtt.active_partitions()) == 8
        vtt.sync_with_free_registers(lambda rn: rn >= 1000)
        assert all(vp.base_rn >= 1000 for vp in vtt.active_partitions())

    def test_capacity_tracks_active_partitions(self):
        vtt = make_vtt()
        assert vtt.active_capacity_lines() == 0
        vtt.activate(0)
        vtt.activate(5)
        assert vtt.active_capacity_lines() == 2 * 192

    def test_set_index_matches_l1(self):
        vtt = make_vtt(num_sets=48)
        assert vtt.set_index(48 * 7 + 13) == 13
