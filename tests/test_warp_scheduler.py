"""Unit tests for warps and the GTO scheduler."""

import pytest

from repro.gpu.isa import alu, exit_inst
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.warp import Warp, WarpState


def make_warp(insts=None, launch_order=0, max_outstanding=4):
    insts = insts if insts is not None else [alu(), exit_inst()]
    return Warp(
        warp_id=launch_order,
        cta_slot=0,
        launch_order=launch_order,
        trace=iter(insts),
        max_outstanding=max_outstanding,
    )


class TestWarpLifecycle:
    def test_starts_ready_with_instruction(self):
        w = make_warp()
        assert w.state is WarpState.READY
        assert w.peek().op.value == "alu"

    def test_empty_trace_finishes_immediately(self):
        w = make_warp(insts=[])
        assert w.finished

    def test_retire_advances(self):
        w = make_warp([alu(), exit_inst()])
        w.retire_current()
        assert w.peek().op.value == "exit"
        assert w.instructions_retired == 1

    def test_retire_past_end_raises(self):
        w = make_warp([])
        with pytest.raises(RuntimeError):
            w.retire_current()


class TestMemoryBlocking:
    def test_blocks_only_beyond_outstanding_limit(self):
        """Scoreboarding: a warp keeps issuing until it has
        max_outstanding lines in flight."""
        w = make_warp(max_outstanding=2)
        w.block_on_memory(1)
        assert w.state is WarpState.READY
        w.block_on_memory(1)
        assert w.state is WarpState.BLOCKED

    def test_unblocks_when_below_limit(self):
        w = make_warp(max_outstanding=2)
        w.block_on_memory(2)
        w.memory_response(cycle=50)
        assert w.state is WarpState.READY
        assert w.ready_cycle == 50

    def test_response_without_pending_raises(self):
        w = make_warp()
        with pytest.raises(RuntimeError):
            w.memory_response(0)

    def test_throttled_warp_wakes_inactive(self):
        """A CTA throttled mid-flight must not re-enter scheduling when
        its memory responses arrive."""
        w = make_warp(max_outstanding=1)
        w.block_on_memory(1)
        w.deactivate()
        w.memory_response(cycle=10)
        assert w.state is WarpState.INACTIVE

    def test_reactivation_restores_ready(self):
        w = make_warp()
        w.deactivate()
        assert w.state is WarpState.INACTIVE
        w.reactivate(cycle=99)
        assert w.state is WarpState.READY
        assert w.ready_cycle >= 99

    def test_deactivate_finished_warp_is_noop(self):
        w = make_warp([])
        w.deactivate()
        assert w.finished


class TestGTOScheduler:
    def test_greedy_sticks_with_same_warp(self):
        sched = GTOScheduler(0)
        a, b = make_warp(launch_order=0), make_warp(launch_order=1)
        sched.add_warp(a)
        sched.add_warp(b)
        first = sched.pick(0)
        assert sched.pick(0) is first

    def test_falls_back_to_oldest_when_greedy_stalls(self):
        sched = GTOScheduler(0)
        a = make_warp([alu(), alu(), exit_inst()], launch_order=0)
        b = make_warp([alu(), exit_inst()], launch_order=1)
        c = make_warp([alu(), exit_inst()], launch_order=2)
        for w in (a, b, c):
            sched.add_warp(w)
        assert sched.pick(0) is a
        a.ready_cycle = 100  # a stalls
        assert sched.pick(1) is b  # oldest ready, not c

    def test_none_when_all_stalled(self):
        sched = GTOScheduler(0)
        w = make_warp()
        w.ready_cycle = 50
        sched.add_warp(w)
        assert sched.pick(0) is None

    def test_inactive_warps_skipped(self):
        sched = GTOScheduler(0)
        w = make_warp()
        w.deactivate()
        sched.add_warp(w)
        assert sched.pick(0) is None

    def test_next_ready_cycle_immediate(self):
        sched = GTOScheduler(0)
        sched.add_warp(make_warp())
        assert sched.next_ready_cycle(5) == 6

    def test_next_ready_cycle_future(self):
        sched = GTOScheduler(0)
        w = make_warp()
        w.ready_cycle = 42
        sched.add_warp(w)
        assert sched.next_ready_cycle(5) == 42

    def test_next_ready_cycle_none_when_blocked(self):
        sched = GTOScheduler(0)
        w = make_warp(max_outstanding=1)
        w.block_on_memory(1)
        sched.add_warp(w)
        assert sched.next_ready_cycle(5) is None

    def test_remove_finished_drops_warps(self):
        sched = GTOScheduler(0)
        done = make_warp([])
        live = make_warp(launch_order=1)
        sched.add_warp(done)
        sched.add_warp(live)
        sched.remove_finished()
        assert sched.warps == [live]
