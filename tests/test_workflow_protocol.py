"""Protocol-level integration tests following the paper's Figure 6
workflow: monitoring -> selection -> proactive throttle -> backup ->
victim caching -> reactivation on CTA completion."""

import pytest

from repro.config import scaled_config
from repro.core.cta_throttle import SearchPhase
from repro.core.linebacker import LinebackerExtension
from repro.gpu.gpu import run_kernel
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel


class RecordingLinebacker(LinebackerExtension):
    """Logs state transitions for protocol assertions."""

    instances: list["RecordingLinebacker"] = []

    def __init__(self):
        super().__init__(scaled_config(window_cycles=400).linebacker)
        self.events: list[tuple] = []
        RecordingLinebacker.instances.append(self)

    def _enter_victim_mode(self):
        self.events.append(("selected", tuple(sorted(self.load_monitor.selected_hpcs))))
        super()._enter_victim_mode()

    def _throttle_one(self, cycle):
        before = self.stats.throttle_events
        super()._throttle_one(cycle)
        if self.stats.throttle_events > before:
            self.events.append(("throttle", cycle))

    def _reactivate_one(self, cycle):
        super()._reactivate_one(cycle)

    def try_reactivate_cta(self, cycle):
        result = super().try_reactivate_cta(cycle)
        if result:
            self.events.append(("completion_reactivate", cycle))
        return result


@pytest.fixture(scope="module")
def run():
    RecordingLinebacker.instances.clear()
    spec = AppSpec(
        name="proto", description="t", cache_sensitive=True,
        num_ctas=24, warps_per_cta=4, regs_per_thread=16,
        iterations=220, alu_per_iteration=2,
        loads=(
            LoadSpec(0x100, Pattern.DIVERGENT, 1024, Scope.GLOBAL, lines_per_access=1),
            LoadSpec(0x204, Pattern.STREAM, 0),
        ),
    )
    cfg = scaled_config(num_sms=1, window_cycles=400)
    result = run_kernel(
        cfg, build_kernel(spec), extension_factory=RecordingLinebacker, keep_objects=True
    )
    return result, result.extensions[0]


class TestFigure6Workflow:
    def test_selection_happens_before_any_throttle(self, run):
        _, ext = run
        kinds = [e[0] for e in ext.events]
        if "throttle" in kinds:
            assert kinds.index("selected") < kinds.index("throttle")

    def test_stream_load_not_selected(self, run):
        _, ext = run
        from repro.gpu.isa import hashed_pc

        assert not ext.load_monitor.is_selected(hashed_pc(0x204))

    def test_locality_load_selected(self, run):
        _, ext = run
        from repro.gpu.isa import hashed_pc

        assert ext.load_monitor.is_selected(hashed_pc(0x100))

    def test_proactive_throttle_after_selection(self, run):
        """The paper throttles one CTA immediately when monitoring ends."""
        _, ext = run
        assert ext.stats.throttle_events >= 1

    def test_backup_precedes_victim_partition_growth(self, run):
        result, ext = run
        # Backup traffic exists for every throttle event.
        assert result.traffic.backup_write_lines > 0

    def test_no_cta_left_inactive_at_drain(self, run):
        result, ext = run
        for sm in result.sms:
            assert not sm.ctas  # everything retired

    def test_controller_reached_a_stable_phase(self, run):
        _, ext = run
        assert ext.controller.phase in (
            SearchPhase.SEARCHING, SearchPhase.RECOVERING, SearchPhase.SETTLED
        )

    def test_all_backups_resolved(self, run):
        _, ext = run
        # Records remain only for CTAs that finished while throttled
        # (impossible: throttled CTAs don't run) — so none remain.
        assert not ext._restoring
        assert ext.engine.outstanding_backups == len(ext._backup_records)
