"""Workload description language: document round trips, validation,
registry semantics, and first-class integration with JobSpec, the HTTP
job schema and the execution engine."""

import json

import pytest

from repro.config import scaled_config
from repro.runner.engine import execute_job
from repro.runner.spec import JobSpec
from repro.service.schema import SchemaError, decode_jobspec, encode_jobspec
from repro.workloads.generator import LoadSpec, Pattern, Scope, StoreSpec
from repro.workloads.spec import (
    WORKLOAD_SPEC_VERSION,
    KernelPhase,
    TenantSpec,
    WorkloadSpec,
    WorkloadSpecError,
    build_workload,
    decode_workload,
    encode_workload,
    load_workload_file,
    register_workload,
    registered_workload,
    save_workload_file,
    unregister_workload,
    validate_workload,
    workload_from_app,
    workload_hash,
)
from repro.workloads.suite import app_spec, kernel_for


def simple_workload(name="wl-test", **kw):
    phase = KernelPhase(
        iterations=16,
        loads=(
            LoadSpec(0x100, Pattern.REUSE, 12, Scope.CTA),
            LoadSpec(0x204, Pattern.STREAM, 0),
        ),
        stores=(StoreSpec(0x510, every_iterations=4),),
        alu_per_iteration=2,
    )
    defaults = dict(
        name=name, description="test workload", num_ctas=4,
        warps_per_cta=2, regs_per_thread=16,
        tenants=(TenantSpec(name="main", phases=(phase,)),),
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


def multi_tenant_workload(name="wl-mt"):
    friendly = TenantSpec(name="friendly", phases=(
        KernelPhase(iterations=12,
                    loads=(LoadSpec(0x100, Pattern.REUSE, 8, Scope.CTA),)),
    ))
    streamer = TenantSpec(name="streamer", phases=(
        KernelPhase(iterations=12, loads=(LoadSpec(0x300, Pattern.STREAM, 0),)),
        KernelPhase(iterations=8,
                    loads=(LoadSpec(0x404, Pattern.DIVERGENT, 32),)),
    ))
    return WorkloadSpec(
        name=name, description="two tenants", num_ctas=6, warps_per_cta=2,
        regs_per_thread=24, tenants=(friendly, streamer),
    )


@pytest.fixture(autouse=True)
def clean_registry():
    yield
    for name in ("wl-test", "wl-mt", "wl-reg", "wl-file", "wl-job"):
        unregister_workload(name)


class TestDocumentRoundTrip:
    def test_round_trip_is_identity(self):
        spec = multi_tenant_workload()
        doc = encode_workload(spec)
        assert doc["spec"] == WORKLOAD_SPEC_VERSION
        back = decode_workload(doc)
        assert back == spec
        assert workload_hash(back) == workload_hash(spec)

    def test_json_serializable(self):
        doc = encode_workload(simple_workload())
        assert decode_workload(json.loads(json.dumps(doc))) == simple_workload()

    def test_version_mismatch_rejected(self):
        doc = encode_workload(simple_workload())
        doc["spec"] = WORKLOAD_SPEC_VERSION + 1
        with pytest.raises(WorkloadSpecError, match="version"):
            decode_workload(doc)

    @pytest.mark.parametrize("path,field", [
        ((), "surprise"),
        (("tenants", 0), "surprise"),
        (("tenants", 0, "phases", 0), "surprise"),
        (("tenants", 0, "phases", 0, "loads", 0), "surprise"),
        (("tenants", 0, "phases", 0, "stores", 0), "surprise"),
    ])
    def test_unknown_fields_rejected_at_every_level(self, path, field):
        doc = encode_workload(simple_workload())
        node = doc
        for step in path:
            node = node[step]
        node[field] = 1
        with pytest.raises(WorkloadSpecError, match="unknown"):
            decode_workload(doc)

    def test_unknown_pattern_named_in_error(self):
        doc = encode_workload(simple_workload())
        doc["tenants"][0]["phases"][0]["loads"][0]["pattern"] = "zigzag"
        with pytest.raises(WorkloadSpecError, match="zigzag"):
            decode_workload(doc)

    def test_file_round_trip(self, tmp_path):
        spec = simple_workload(name="wl-file")
        path = tmp_path / "wl.json"
        save_workload_file(spec, path)
        assert load_workload_file(path) == spec
        assert registered_workload("wl-file") is None
        loaded = load_workload_file(path, register=True)
        assert registered_workload("wl-file") == loaded

    def test_bad_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(WorkloadSpecError):
            load_workload_file(path)


class TestValidation:
    def test_phase_needs_loads(self):
        with pytest.raises(WorkloadSpecError, match="load"):
            validate_workload(simple_workload(tenants=(
                TenantSpec(name="main", phases=(
                    KernelPhase(iterations=4, loads=()),
                )),
            )))

    def test_pc_keeps_one_pattern_across_phases(self):
        tenants = (TenantSpec(name="main", phases=(
            KernelPhase(iterations=4,
                        loads=(LoadSpec(0x100, Pattern.REUSE, 8),)),
            KernelPhase(iterations=4,
                        loads=(LoadSpec(0x100, Pattern.DIVERGENT, 8),)),
        )),)
        with pytest.raises(WorkloadSpecError, match="pattern"):
            validate_workload(simple_workload(tenants=tenants))

    def test_stream_pc_single_phase_per_tenant(self):
        tenants = (TenantSpec(name="main", phases=(
            KernelPhase(iterations=4,
                        loads=(LoadSpec(0x100, Pattern.STREAM, 0),)),
            KernelPhase(iterations=4,
                        loads=(LoadSpec(0x100, Pattern.STREAM, 0),)),
        )),)
        with pytest.raises(WorkloadSpecError, match="STREAM|stream"):
            validate_workload(simple_workload(tenants=tenants))

    def test_bounds_enforced(self):
        with pytest.raises(WorkloadSpecError):
            validate_workload(simple_workload(num_ctas=1 << 20))
        with pytest.raises(WorkloadSpecError):
            validate_workload(simple_workload(regs_per_thread=4096))

    def test_store_pc_must_not_collide_with_loads(self):
        tenants = (TenantSpec(name="main", phases=(
            KernelPhase(
                iterations=4,
                loads=(LoadSpec(0x100, Pattern.REUSE, 8),),
                stores=(StoreSpec(0x100, every_iterations=2),),
            ),
        )),)
        with pytest.raises(WorkloadSpecError, match="store"):
            validate_workload(simple_workload(tenants=tenants))


class TestRegistry:
    def test_register_and_lookup(self):
        spec = simple_workload(name="wl-reg")
        register_workload(spec)
        assert registered_workload("wl-reg") == spec
        register_workload(spec)  # idempotent for an equal spec
        changed = simple_workload(name="wl-reg", num_ctas=8)
        with pytest.raises(WorkloadSpecError):
            register_workload(changed)
        register_workload(changed, replace=True)
        assert registered_workload("wl-reg") == changed

    def test_builtin_names_shadowing_rejected(self):
        with pytest.raises(WorkloadSpecError, match="built-in"):
            register_workload(simple_workload(name="S2"))


class TestTraceEquivalence:
    def test_single_tenant_matches_plain_generator(self):
        app = app_spec("LI", scale=0.1)
        wrapped = workload_from_app(app)
        k_app = kernel_for("LI", scale=0.1)
        k_wl = build_workload(wrapped)
        for cta, warp in ((0, 0), (1, 3), (app.num_ctas - 1, 0)):
            assert list(k_wl.warp_trace(cta, warp)) == list(
                k_app.warp_trace(cta, warp)
            )

    def test_tenants_interleave_round_robin(self):
        spec = multi_tenant_workload()
        kernel = build_workload(spec)
        # CTA 0 runs tenant 0 (reuse only); CTA 1 runs tenant 1
        # (stream then divergent): their PC sets must not mix.
        pcs0 = {i.pc for i in kernel.materialize(0, 0) if i.is_memory}
        pcs1 = {i.pc for i in kernel.materialize(1, 0) if i.is_memory}
        assert not (pcs0 & pcs1)


class TestJobIntegration:
    def test_jobspec_auto_attaches_registered_workload(self):
        spec = simple_workload(name="wl-job")
        register_workload(spec)
        job = JobSpec.build(app="wl-job", arch="baseline",
                            config=scaled_config(num_sms=1))
        assert job.workload == spec

    def test_builtin_jobs_carry_no_workload(self):
        job = JobSpec.build(app="S2", arch="baseline",
                            config=scaled_config(num_sms=1), scale=0.1)
        assert job.workload is None

    def test_mismatched_attachment_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            JobSpec.build(app="other", arch="baseline",
                          config=scaled_config(num_sms=1),
                          workload=simple_workload(name="wl-job"))

    def test_http_schema_transports_workload(self):
        job = JobSpec.build(app="wl-job", arch="baseline",
                            config=scaled_config(num_sms=1),
                            workload=simple_workload(name="wl-job"))
        doc = encode_jobspec(job)
        assert doc["workload"]["name"] == "wl-job"
        back = decode_jobspec(json.loads(json.dumps(doc)))
        assert back == job
        assert back.key == job.key

    def test_builtin_app_with_workload_doc_rejected(self):
        job = JobSpec.build(app="wl-job", arch="baseline",
                            config=scaled_config(num_sms=1),
                            workload=simple_workload(name="wl-job"))
        doc = encode_jobspec(job)
        doc["app"] = "S2"
        doc["workload"]["name"] = "S2"
        with pytest.raises(SchemaError, match="built-in"):
            decode_jobspec(doc)

    def test_unknown_app_without_doc_rejected(self):
        job = JobSpec.build(app="S2", arch="baseline",
                            config=scaled_config(num_sms=1), scale=0.1)
        doc = encode_jobspec(job)
        doc["app"] = "wl-not-registered"
        with pytest.raises(SchemaError, match="workload"):
            decode_jobspec(doc)

    def test_engine_executes_attached_workload(self):
        job = JobSpec.build(app="wl-job", arch="baseline",
                            config=scaled_config(num_sms=1),
                            workload=simple_workload(name="wl-job"))
        result, seconds = execute_job(job)
        assert result.instructions > 0
        assert seconds >= 0
