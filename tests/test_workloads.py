"""Tests for the synthetic workload suite (paper Table 2 stand-ins)."""

import sys
from pathlib import Path

import pytest

from repro.config import GPUConfig
from repro.gpu.isa import Op
from repro.gpu.sm import SM
from repro.workloads.generator import (
    AppSpec,
    LoadSpec,
    Pattern,
    Scope,
    StoreSpec,
    build_kernel,
    footprint_bytes,
)
from repro.workloads.suite import (
    ALL_APPS,
    APP_SPECS,
    CACHE_INSENSITIVE,
    CACHE_SENSITIVE,
    app_spec,
    kernel_for,
)

sys.path.insert(0, str(Path(__file__).parent))
from workload_helpers import make_app  # noqa: E402


class TestSuiteShape:
    def test_twenty_apps(self):
        """Table 2: 10 cache-sensitive + 10 cache-insensitive apps."""
        assert len(ALL_APPS) == 20
        assert len(CACHE_SENSITIVE) == 10
        assert len(CACHE_INSENSITIVE) == 10

    def test_paper_app_names(self):
        expected = {
            "S2", "BI", "AT", "S1", "CF", "GE", "KM", "BC", "MV", "PF",
            "BG", "LI", "SR2", "SP", "BR", "FD", "GA", "2D", "SR1", "HS",
        }
        assert set(ALL_APPS) == expected

    def test_every_app_builds(self):
        for name in ALL_APPS:
            kernel = kernel_for(name, scale=0.1)
            assert kernel.num_ctas >= 8

    def test_streaming_apps_have_stream_loads(self):
        """BI, LI, SR2, 2D, HS move large streaming data (Figure 3)."""
        for name in ("BI", "LI", "SR2", "2D", "HS"):
            spec = APP_SPECS[name]
            assert any(l.pattern is Pattern.STREAM for l in spec.loads), name

    def test_bfs_variants_are_divergent(self):
        for name in ("BC", "BG", "BR"):
            spec = APP_SPECS[name]
            assert any(l.pattern is Pattern.DIVERGENT for l in spec.loads), name

    def test_scale_shrinks_iterations_only(self):
        full = app_spec("S2")
        small = app_spec("S2", scale=0.25)
        assert small.iterations < full.iterations
        assert small.num_ctas == full.num_ctas

    def test_unique_pcs_within_each_app(self):
        for name in ALL_APPS:
            pcs = [l.pc for l in APP_SPECS[name].loads]
            assert len(set(pcs)) == len(pcs), name


class TestGeneratedTraces:
    def spec(self, loads, iters=10, warps=2, ctas=2):
        return make_app(loads, iters=iters, warps=warps, ctas=ctas)

    def test_trace_ends_with_exit(self):
        spec = self.spec([LoadSpec(0x100, Pattern.REUSE, 8)])
        kernel = build_kernel(spec)
        insts = kernel.materialize(0, 0)
        assert insts[-1].op is Op.EXIT

    def test_reuse_load_stays_in_working_set(self):
        spec = self.spec([LoadSpec(0x100, Pattern.REUSE, 16, Scope.CTA)])
        kernel = build_kernel(spec)
        insts = kernel.materialize(1, 0)
        base = spec.region_base(0) + 1 * 16
        for inst in insts:
            if inst.op is Op.LOAD:
                assert all(base <= a < base + 16 for a in inst.line_addrs)

    def test_stream_load_never_repeats_a_line(self):
        spec = self.spec([LoadSpec(0x100, Pattern.STREAM, 0)], iters=50)
        kernel = build_kernel(spec)
        seen = []
        for inst in kernel.materialize(0, 1):
            if inst.op is Op.LOAD:
                seen.extend(inst.line_addrs)
        assert len(seen) == len(set(seen))

    def test_stream_lines_disjoint_across_warps(self):
        spec = self.spec([LoadSpec(0x100, Pattern.STREAM, 0)], iters=20)
        kernel = build_kernel(spec)
        lines_w0 = {a for i in kernel.materialize(0, 0) if i.op is Op.LOAD for a in i.line_addrs}
        lines_w1 = {a for i in kernel.materialize(0, 1) if i.op is Op.LOAD for a in i.line_addrs}
        assert not (lines_w0 & lines_w1)

    def test_global_scope_shared_across_ctas(self):
        spec = self.spec([LoadSpec(0x100, Pattern.REUSE, 8, Scope.GLOBAL)], iters=20)
        kernel = build_kernel(spec)
        lines_c0 = {a for i in kernel.materialize(0, 0) if i.op is Op.LOAD for a in i.line_addrs}
        lines_c1 = {a for i in kernel.materialize(1, 0) if i.op is Op.LOAD for a in i.line_addrs}
        assert lines_c0 & lines_c1

    def test_cta_scope_disjoint_across_ctas(self):
        spec = self.spec([LoadSpec(0x100, Pattern.REUSE, 8, Scope.CTA)], iters=20)
        kernel = build_kernel(spec)
        lines_c0 = {a for i in kernel.materialize(0, 0) if i.op is Op.LOAD for a in i.line_addrs}
        lines_c1 = {a for i in kernel.materialize(1, 0) if i.op is Op.LOAD for a in i.line_addrs}
        assert not (lines_c0 & lines_c1)

    def test_global_streams_differ_across_ctas(self):
        """Regression: warp k of different CTAs must not produce the
        same (lockstep) global address stream — duplicates merge in the
        MSHRs and never hit."""
        spec = self.spec(
            [LoadSpec(0x100, Pattern.DIVERGENT, 512, Scope.GLOBAL, lines_per_access=1)],
            iters=30,
        )
        kernel = build_kernel(spec)
        seq_c0 = [a for i in kernel.materialize(0, 0) if i.op is Op.LOAD for a in i.line_addrs]
        seq_c1 = [a for i in kernel.materialize(1, 0) if i.op is Op.LOAD for a in i.line_addrs]
        assert seq_c0 != seq_c1

    def test_stores_emitted_at_interval(self):
        spec = AppSpec(
            name="t", description="t", cache_sensitive=False,
            num_ctas=1, warps_per_cta=1, regs_per_thread=8,
            iterations=16, alu_per_iteration=1,
            loads=(LoadSpec(0x100, Pattern.REUSE, 8),),
            stores=(StoreSpec(0x510, every_iterations=4),),
        )
        kernel = build_kernel(spec)
        n_stores = sum(1 for i in kernel.materialize(0, 0) if i.op is Op.STORE)
        assert n_stores == 4

    def test_divergent_emits_multiple_lines(self):
        spec = self.spec([LoadSpec(0x100, Pattern.DIVERGENT, 64, lines_per_access=3)])
        kernel = build_kernel(spec)
        loads = [i for i in kernel.materialize(0, 0) if i.op is Op.LOAD]
        assert all(len(i.line_addrs) == 3 for i in loads)

    def test_rejects_app_without_loads(self):
        with pytest.raises(ValueError):
            build_kernel(self.spec([]))

    def test_rejects_duplicate_pcs(self):
        with pytest.raises(ValueError):
            build_kernel(
                self.spec([LoadSpec(0x100, Pattern.REUSE, 8), LoadSpec(0x100, Pattern.STREAM, 0)])
            )


class TestCalibration:
    def test_sensitive_apps_exceed_l1_at_full_occupancy(self):
        """The defining property of the cache-sensitive class: resident
        reused footprint above the 48 KB L1."""
        cfg = GPUConfig()
        for name in CACHE_SENSITIVE:
            spec = APP_SPECS[name]
            kernel = kernel_for(name, scale=0.1)
            occ = SM.hardware_occupancy(cfg, kernel)
            assert footprint_bytes(spec, occ) > 48 * 1024, name

    def test_some_apps_leave_no_static_register_space(self):
        """Figure 4's spread includes apps with ~0 KB SUR (fully
        occupied register file) — CF by design."""
        from repro.gpu.gpu import statically_unused_register_bytes

        cfg = GPUConfig()
        surs = {
            name: statically_unused_register_bytes(cfg, kernel_for(name, 0.1))
            for name in ALL_APPS
        }
        assert min(surs.values()) <= 8 * 1024
        assert max(surs.values()) >= 96 * 1024
