"""Shared builders for synthetic single-app workload tests.

``test_workloads.py`` and ``test_generator_extra.py`` grew identical
ad-hoc AppSpec builders; the fuzzer/classifier tests need the same
shapes again, so the construction lives here once.
"""

from repro.gpu.isa import Op
from repro.workloads.generator import AppSpec


def make_app(loads, iters=10, warps=2, ctas=2, alu=2, regs=8, name="t"):
    """A minimal synthetic :class:`AppSpec` around ``loads``."""
    if not isinstance(loads, (tuple, list)):
        loads = (loads,)
    return AppSpec(
        name=name, description="t", cache_sensitive=True,
        num_ctas=ctas, warps_per_cta=warps, regs_per_thread=regs,
        iterations=iters, alu_per_iteration=alu, loads=tuple(loads),
    )


def lines_of(kernel, cta, warp):
    """Every line address one warp's loads touch, in issue order."""
    return [
        a
        for inst in kernel.materialize(cta, warp)
        if inst.op is Op.LOAD
        for a in inst.line_addrs
    ]
